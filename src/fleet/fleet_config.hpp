// Configuration of the sharded fleet engine (src/fleet): what population to
// simulate, how it clusters onto device/workload classes, and how the
// engine shards and parallelizes.
//
// See fleet_engine.hpp for the engine itself and DESIGN.md §6f for the
// shard layout, event-queue ordering rule and RNG domain scheme.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bofl_controller.hpp"
#include "device/device_model.hpp"
#include "device/workload.hpp"
#include "faults/fault_plan.hpp"
#include "faults/fleet_scenario.hpp"
#include "priors/prior_policy.hpp"

namespace bofl::priors {
class KnowledgeStore;
}

namespace bofl::fleet {

/// Which pace-control policy the fleet's clients follow.  One canonical
/// controller per cluster produces the per-participation cost trajectory
/// that the cluster's clients share (see cluster.hpp).
enum class FleetControllerKind {
  kBofl,        ///< the paper's controller (phase 1 → 2 → 3)
  kPerformant,  ///< every job at x_max
  kOracle,      ///< exploitation ILP over the true Pareto front every round
};

[[nodiscard]] const char* to_string(FleetControllerKind kind);

/// One fleet cluster: a population slice sharing a device model and
/// workload (the paper's "same SoC, same task" cohort).  Clients are
/// assigned to clusters by a weighted pure-hash draw on their id, so the
/// assignment is independent of shard and thread counts.
struct ClusterSpec {
  /// Non-owning; must outlive the engine.
  const device::DeviceModel* model = nullptr;
  device::WorkloadProfile profile = device::vit_profile();
  /// Relative share of the population landing in this cluster.
  double weight = 1.0;
};

struct FleetConfig {
  std::size_t num_clients = 100'000;
  std::int64_t rounds = 100;
  /// Per-round participation probability: each client joins a round with
  /// this probability (independent pure-hash draw), the fleet-scale analogue
  /// of a fixed cohort size.  Expected cohort = fraction * num_clients.
  double cohort_fraction = 0.01;
  std::int64_t jobs_per_round = 60;
  /// Round deadlines per cluster trajectory entry: uniform in
  /// [T_min, ratio * T_min] (the paper's §6.1 protocol).  Fleet runs need
  /// >= ~8 to reach steady-state exploitation (the PR 5 finding; 2.0 keeps
  /// clients stuck in exploration).
  double deadline_ratio = 8.0;
  std::uint64_t seed = 1;
  FleetControllerKind controller = FleetControllerKind::kBofl;

  /// Shard count; 0 = runtime::resolve_shard_count (enough shards to keep
  /// every worker busy).  Results are bit-identical for every value.
  std::size_t shards = 0;
  /// Worker threads for the per-round shard fan-out; 0 = one per hardware
  /// thread, 1 = serial.  Bit-identical for every value.
  std::size_t threads = 0;
  /// Escape hatch: run the per-round cluster control plane (needed-depth
  /// reduction, trajectory extension, end-of-run prior distillation) one
  /// cluster at a time on the round-loop thread instead of fanning it over
  /// the worker pool.  Results are bit-identical either way — the
  /// control_plane_determinism tests pin it — this only trades wall time
  /// for a simpler execution schedule (debugging, profiling serial cost).
  bool serial_control_plane = false;

  /// Population heterogeneity: per-client silicon/binning speed factor,
  /// lognormal with this coefficient of variation around the cluster's
  /// canonical device (latency and energy scale together — the unit is
  /// slower, not differently shaped).  0 = perfectly uniform cluster.
  double heterogeneity_cv = 0.08;
  /// Per-(client, participation) execution jitter (background load), as a
  /// lognormal CV applied to that round's latency and energy.
  double round_noise_cv = 0.01;

  /// Pace-controller tuning for the canonical BoFL controllers.  As in
  /// fl::Simulation, τ is auto-scaled to min(τ, round T_min / 8) so short
  /// fleet rounds can still explore; mbo_cost is replaced by the
  /// device-calibrated model.
  core::BoflOptions bofl_options{};
  bool auto_scale_tau = true;

  /// Server-side straggler handling: wait at most this multiple of the
  /// round's reference deadline (the cohort's largest effective deadline)
  /// before closing the round; late reports count as timed out.  0 = wait
  /// for every report.
  double straggler_timeout = 0.0;

  /// FL-level fault injection (stragglers, dropouts, deadline jitter) is
  /// drawn per (round, client) through the pure-hash FaultInjector queries;
  /// device-level kinds perturb each cluster's canonical trajectory through
  /// one DeviceFaultChannel per cluster.  Unset = clean run.
  std::optional<faults::FaultPlan> fault_plan;

  /// Fleet-population scenario (churn / diurnal waves / task switches /
  /// battery budgets — see faults/fleet_scenario.hpp).  Unset = steady
  /// population, bit-identical to pre-scenario engines.  A scenario with an
  /// embedded fault plan requires `fault_plan` to stay unset (the engine
  /// refuses ambiguous double fault sources).
  std::optional<faults::FleetScenario> scenario;

  /// The population mix; empty = one AGX/ViT cluster (caller must keep the
  /// referenced DeviceModels alive).
  std::vector<ClusterSpec> clusters;

  /// Fleet knowledge plane (src/priors).  When set, each cluster's
  /// canonical controller asks the store for its cluster prior under
  /// `prior_policy` at construction, and after the run every canonical
  /// controller publishes back (outcome feedback always; a distilled
  /// snapshot when it reached exploitation), in cluster-index order so the
  /// store's content is shard/thread-layout invariant.  Non-owning; must
  /// outlive the engine.  nullptr = no knowledge plane (and kCold keeps an
  /// attached store read-only + bit-identical to a cold run, by contract).
  priors::KnowledgeStore* knowledge = nullptr;
  priors::PriorPolicy prior_policy = priors::PriorPolicy::kCold;
};

}  // namespace bofl::fleet
