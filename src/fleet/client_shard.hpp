// Struct-of-arrays client state for the sharded fleet engine.
//
// The per-object fl::Client (model replica + dataset shard + controller,
// several MB each) cannot scale to 10^6 clients.  At fleet scale a client
// IS its row across a handful of parallel arrays — the device::FlatPerfTable
// SoA pattern from PR 5 applied to the whole client:
//
//   cluster[i]         which cluster trajectory the client replays — the
//                      client's Pareto-front handle (cluster.hpp)
//   participations[i]  trajectory cursor: how often it has been selected
//   rng_cursor[i]      per-client draw counter keying the jitter stream
//                      (stream_seed(client_seed, cursor)); kept separate
//                      from participations so future churn/state-reset can
//                      advance one without the other
//   energy_uj[i]       lifetime training energy, integer microjoules
//   busy_us[i]         lifetime training wall time, integer microseconds
//   misses[i]          rounds whose effective deadline the client missed
//
// A shard owns a contiguous client-id range (runtime/sharding.hpp), its own
// completion-event queue, and its own round scratch, so the per-round fan-
// out touches each shard from exactly one task — single-writer, no locks.
// All cross-shard reductions are integer adds and maxes (associative +
// commutative), so merged fleet stats are bit-identical at any shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/event_queue.hpp"
#include "runtime/sharding.hpp"

namespace bofl::fleet {

/// One round's accounting for one shard; merged across shards in shard
/// order.  Every field is an integer accumulator (modular add) or a max,
/// so the merged result is independent of the shard layout.
struct ShardRoundStats {
  std::uint64_t energy_uj = 0;
  std::uint64_t mbo_energy_uj = 0;
  std::uint64_t busy_us = 0;
  std::uint64_t wall_us = 0;          ///< last counted arrival (max)
  std::uint64_t max_deadline_us = 0;  ///< largest effective deadline (max)
  std::uint64_t queue_peak = 0;       ///< event-queue peak depth (max)
  std::uint32_t participants = 0;
  std::uint32_t dropped = 0;
  std::uint32_t missed = 0;
  std::uint32_t stragglers = 0;
  std::uint32_t timed_out = 0;
  std::uint32_t phase1 = 0;
  std::uint32_t phase2 = 0;
  std::uint32_t phase3 = 0;
  // Fleet-scenario population accounting (all zero outside scenario runs).
  std::uint32_t active_clients = 0;   ///< clients present after churn
  std::uint32_t departed = 0;         ///< left the fleet this round
  std::uint32_t rejoined = 0;         ///< returned this round
  std::uint32_t resets = 0;           ///< re-joins that lost their state
  std::uint32_t battery_blocked = 0;  ///< selected but below the watermark

  void merge(const ShardRoundStats& other);
};

/// Run-cumulative per-shard telemetry: the striped-counter design of
/// src/telemetry lifted from per-thread to per-shard.  Each shard's task is
/// the single writer of its own struct; the engine merges all shards on
/// read (end of round / end of run) before touching the global registry.
struct ShardTelemetry {
  std::uint64_t events_pushed = 0;
  std::uint64_t selections = 0;
  std::uint64_t dropouts = 0;
  std::uint64_t deadline_misses = 0;

  void merge(const ShardTelemetry& other);
};

class ClientShard {
 public:
  /// Allocates the SoA arrays for `range` (cluster assignment is filled by
  /// the engine, which owns the client→cluster hash).
  explicit ClientShard(runtime::ShardRange range);

  [[nodiscard]] const runtime::ShardRange& range() const { return range_; }
  [[nodiscard]] std::size_t size() const { return range_.size(); }

  // SoA columns, indexed by local offset (client id - range().begin).
  std::vector<std::uint16_t> cluster;
  std::vector<std::uint32_t> participations;
  std::vector<std::uint32_t> rng_cursor;
  std::vector<std::uint64_t> energy_uj;
  std::vector<std::uint64_t> busy_us;
  std::vector<std::uint32_t> misses;

  // Fleet-scenario columns, allocated by the engine ONLY when the scenario
  // enables the matching process (so the steady-state bytes/client figure
  // is untouched).  `active` is the churn membership bit; `battery_uj` the
  // remaining per-client energy budget in integer microjoules.
  std::vector<std::uint8_t> active;
  std::vector<std::uint64_t> battery_uj;

  /// Per-shard completion-event queue, reused across rounds.
  CompletionQueue<std::uint64_t> queue;

  /// Round scratch (single-writer, reused): the local offsets selected this
  /// round, the deepest trajectory entry needed per cluster, and the ids of
  /// clients whose report timed out (their replay cursor rolls back).
  std::vector<std::uint32_t> cohort;
  std::vector<std::uint32_t> needed_entries;
  std::vector<std::uint64_t> timed_out_clients;

  /// This round's accounting and the run-cumulative telemetry.
  ShardRoundStats round_stats;
  ShardTelemetry telemetry;

  /// Bytes held by the SoA columns (capacity, not size) — the numerator of
  /// the bench's bytes/client figure.  Excludes the transient round scratch.
  [[nodiscard]] std::uint64_t soa_bytes() const;

 private:
  runtime::ShardRange range_;
};

}  // namespace bofl::fleet
