#include "fleet/fleet_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "priors/knowledge_store.hpp"
#include "telemetry/process.hpp"

namespace bofl::fleet {

namespace {

// RNG domain tags (DESIGN.md §6f).  Every stochastic fleet decision hashes
// (seed ^ domain, ids) through stream_seed, so the domains are mutually
// independent substreams of one fleet seed and none of them depends on the
// shard layout or worker count.
constexpr std::uint64_t kClusterDomain = 0xF1EE7'05A1'7ED5ULL;  // client→cluster
constexpr std::uint64_t kSelectDomain = 0xF1EE7'5E1E'C7EDULL;   // cohort draw
constexpr std::uint64_t kSpeedDomain = 0xF1EE7'5B33'D000ULL;    // heterogeneity
constexpr std::uint64_t kJitterDomain = 0xF1EE7'01'77E2ULL;     // round noise
// Fleet-scenario churn domains.  Bases mix the fleet seed with the
// scenario's own seed (stream_seed, like FaultInjector) so the same spec
// replays under any fleet seed and two specs never share draws.
constexpr std::uint64_t kLeaveDomain = 0xF1EE7'1EAF'E000ULL;   // churn: leave
constexpr std::uint64_t kRejoinDomain = 0xF1EE7'4E01'0123ULL;  // churn: re-join
constexpr std::uint64_t kResetDomain = 0xF1EE7'4E5E'7777ULL;   // churn: reset

/// Uniform double in [0, 1) from a pure hash — no generator state.
[[nodiscard]] double hash_unit(std::uint64_t base, std::uint64_t stream) {
  return static_cast<double>(stream_seed(base, stream) >> 11) * 0x1.0p-53;
}

[[nodiscard]] std::uint64_t scale_us(std::uint64_t quantized, double factor) {
  return factor == 1.0 ? quantized
                       : static_cast<std::uint64_t>(std::llround(
                             static_cast<double>(quantized) * factor));
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_fold(std::uint64_t& hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFU;
    hash *= kFnvPrime;
  }
}

void fold_round(std::uint64_t& hash, const FleetRoundStats& stats,
                bool scenario_fields) {
  fnv_fold(hash, static_cast<std::uint64_t>(stats.round));
  fnv_fold(hash, stats.energy_uj);
  fnv_fold(hash, stats.mbo_energy_uj);
  fnv_fold(hash, stats.busy_us);
  fnv_fold(hash, stats.wall_us);
  fnv_fold(hash, stats.deadline_ref_us);
  fnv_fold(hash, stats.participants);
  fnv_fold(hash, stats.dropped);
  fnv_fold(hash, stats.missed);
  fnv_fold(hash, stats.stragglers);
  fnv_fold(hash, stats.timed_out);
  fnv_fold(hash, stats.phase1);
  fnv_fold(hash, stats.phase2);
  fnv_fold(hash, stats.phase3);
  if (scenario_fields) {
    // Scenario-free traces keep the historical field set, so the golden
    // hash pinned before scenarios existed stays valid.
    fnv_fold(hash, stats.active_clients);
    fnv_fold(hash, stats.departed);
    fnv_fold(hash, stats.rejoined);
    fnv_fold(hash, stats.resets);
    fnv_fold(hash, stats.battery_blocked);
  }
}

}  // namespace

std::uint64_t fold_trace_hash(const std::vector<FleetRoundStats>& rounds,
                              bool scenario_fields) {
  std::uint64_t hash = kFnvOffset;
  for (const FleetRoundStats& stats : rounds) {
    fold_round(hash, stats, scenario_fields);
  }
  return hash;
}

double FleetResult::total_energy_j() const {
  double sum = 0.0;
  for (const FleetRoundStats& stats : rounds) {
    sum += stats.energy_j();
  }
  return sum;
}

double FleetResult::total_mbo_energy_j() const {
  double sum = 0.0;
  for (const FleetRoundStats& stats : rounds) {
    sum += stats.mbo_energy_j();
  }
  return sum;
}

std::uint64_t FleetResult::total_participants() const {
  std::uint64_t sum = 0;
  for (const FleetRoundStats& stats : rounds) {
    sum += stats.participants;
  }
  return sum;
}

double FleetResult::miss_rate() const {
  std::uint64_t missed = 0;
  for (const FleetRoundStats& stats : rounds) {
    missed += stats.missed;
  }
  const std::uint64_t total = total_participants();
  return total == 0 ? 0.0
                    : static_cast<double>(missed) / static_cast<double>(total);
}

double FleetResult::timeout_rate() const {
  std::uint64_t late = 0;
  for (const FleetRoundStats& stats : rounds) {
    late += stats.timed_out;
  }
  const std::uint64_t total = total_participants();
  return total == 0 ? 0.0
                    : static_cast<double>(late) / static_cast<double>(total);
}

std::uint64_t FleetResult::total_departed() const {
  std::uint64_t sum = 0;
  for (const FleetRoundStats& stats : rounds) {
    sum += stats.departed;
  }
  return sum;
}

std::uint64_t FleetResult::total_rejoined() const {
  std::uint64_t sum = 0;
  for (const FleetRoundStats& stats : rounds) {
    sum += stats.rejoined;
  }
  return sum;
}

std::uint64_t FleetResult::total_resets() const {
  std::uint64_t sum = 0;
  for (const FleetRoundStats& stats : rounds) {
    sum += stats.resets;
  }
  return sum;
}

std::uint64_t FleetResult::total_battery_blocked() const {
  std::uint64_t sum = 0;
  for (const FleetRoundStats& stats : rounds) {
    sum += stats.battery_blocked;
  }
  return sum;
}

double FleetResult::bytes_per_client() const {
  return num_clients == 0 ? 0.0
                          : static_cast<double>(soa_bytes) /
                                static_cast<double>(num_clients);
}

double FleetResult::phase3_fraction() const {
  std::uint64_t exploit = 0;
  for (const FleetRoundStats& stats : rounds) {
    exploit += stats.phase3;
  }
  const std::uint64_t total = total_participants();
  return total == 0 ? 0.0
                    : static_cast<double>(exploit) / static_cast<double>(total);
}

FleetEngine::FleetEngine(FleetConfig config) : config_(std::move(config)) {
  BOFL_REQUIRE(config_.num_clients > 0, "fleet needs at least one client");
  BOFL_REQUIRE(config_.rounds >= 0, "fleet round count must be >= 0");
  BOFL_REQUIRE(
      config_.cohort_fraction > 0.0 && config_.cohort_fraction <= 1.0,
      "cohort fraction must be in (0, 1]");
  BOFL_REQUIRE(config_.straggler_timeout >= 0.0,
               "straggler timeout must be >= 0");
  BOFL_REQUIRE(config_.heterogeneity_cv >= 0.0 && config_.round_noise_cv >= 0.0,
               "noise CVs must be >= 0");

  specs_ = config_.clusters;
  if (specs_.empty()) {
    owned_models_.push_back(device::jetson_agx());
    specs_.push_back(
        ClusterSpec{&owned_models_.front(), device::vit_profile(), 1.0});
  }
  BOFL_REQUIRE(specs_.size() <= 0xFFFF,
               "cluster index must fit the SoA u16 column");
  double total_weight = 0.0;
  for (const ClusterSpec& spec : specs_) {
    BOFL_REQUIRE(spec.weight > 0.0, "cluster weights must be positive");
    total_weight += spec.weight;
  }
  double cumulative = 0.0;
  cluster_cdf_.reserve(specs_.size());
  for (const ClusterSpec& spec : specs_) {
    cumulative += spec.weight / total_weight;
    cluster_cdf_.push_back(cumulative);
  }
  cluster_cdf_.back() = 1.0;  // absorb rounding; hash_unit() is always < 1

  const faults::FleetScenario* scenario =
      config_.scenario.has_value() ? &*config_.scenario : nullptr;
  if (scenario != nullptr) {
    scenario->validate();
    for (const faults::TaskSwitchSpec& ts : scenario->task_switches) {
      BOFL_REQUIRE(ts.cluster < static_cast<std::int64_t>(specs_.size()),
                   "task switch targets a cluster the mix does not have");
    }
    BOFL_REQUIRE(
        scenario->fault_plan.empty() || !config_.fault_plan.has_value(),
        "pass faults either inside the scenario or via fault_plan, not both");
    if (!scenario->fault_plan.empty()) {
      config_.fault_plan = scenario->fault_plan;
    }
    if (scenario->battery.enabled()) {
      battery_capacity_uj_ = static_cast<std::uint64_t>(
          std::llround(scenario->battery.capacity_j * 1e6));
      battery_recharge_uj_ = static_cast<std::uint64_t>(
          std::llround(scenario->battery.recharge_j_per_round * 1e6));
      battery_watermark_uj_ = static_cast<std::uint64_t>(std::llround(
          scenario->battery.resume_fraction * scenario->battery.capacity_j *
          1e6));
    }
  }
  if (config_.fault_plan.has_value()) {
    injector_.emplace(*config_.fault_plan, config_.seed);
  }
  cache_ = std::make_unique<ilp::ScheduleCache>();
  const faults::FaultInjector* injector =
      injector_.has_value() ? &*injector_ : nullptr;
  clusters_.reserve(specs_.size());
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    clusters_.push_back(std::make_unique<ClusterEngine>(
        c, specs_[c], config_, cache_.get(), injector));
  }

  const std::size_t num_shards =
      runtime::resolve_shard_count(config_.num_clients, config_.shards);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.emplace_back(
        runtime::shard_range(config_.num_clients, num_shards, s));
    // Scenario columns only exist when the matching process is enabled, so
    // steady-state runs keep their bytes/client figure.
    ClientShard& shard = shards_.back();
    if (scenario != nullptr && scenario->churn.enabled()) {
      shard.active.assign(shard.size(), 1);
    }
    if (scenario != nullptr && scenario->battery.enabled()) {
      shard.battery_uj.assign(shard.size(), battery_capacity_uj_);
    }
  }
  // Cluster assignment is a weighted pure-hash draw on the client id, so it
  // is the same function of the id under every shard layout.
  const std::uint64_t cluster_base = config_.seed ^ kClusterDomain;
  for (ClientShard& shard : shards_) {
    shard.needed_entries.assign(clusters_.size(), 0);
    const std::size_t begin = shard.range().begin;
    for (std::size_t i = 0; i < shard.size(); ++i) {
      std::size_t c = 0;
      if (cluster_cdf_.size() > 1) {
        const double u = hash_unit(cluster_base, begin + i);
        c = static_cast<std::size_t>(
            std::upper_bound(cluster_cdf_.begin(), cluster_cdf_.end(), u) -
            cluster_cdf_.begin());
        c = std::min(c, cluster_cdf_.size() - 1);
      }
      shard.cluster[i] = static_cast<std::uint16_t>(c);
    }
  }

  if (telemetry::Registry* reg = telemetry::global_registry()) {
    tel_.rounds = &reg->counter("fleet.rounds");
    tel_.participants = &reg->counter("fleet.participants");
    tel_.dropouts = &reg->counter("fleet.dropouts");
    tel_.misses = &reg->counter("fleet.deadline_misses");
    tel_.stragglers = &reg->counter("fleet.stragglers");
    tel_.timed_out = &reg->counter("fleet.timed_out");
    tel_.events = &reg->counter("fleet.events_pushed");
    tel_.clients = &reg->gauge("fleet.clients");
    tel_.shards = &reg->gauge("fleet.shards");
    tel_.soa_bytes = &reg->gauge("fleet.soa_bytes");
    tel_.peak_rss = &reg->gauge("fleet.peak_rss_bytes");
    tel_.queue_depth = &reg->histogram(
        "fleet.event_queue_depth", telemetry::exponential_buckets(1.0, 2.0, 24));
    tel_.round_energy = &reg->histogram("fleet.round_energy_j");
    tel_.control_plane_ms = &reg->histogram("fleet.control_plane_ms");
    if (scenario != nullptr) {
      tel_.departed = &reg->counter("fleet.departed");
      tel_.rejoined = &reg->counter("fleet.rejoined");
      tel_.state_resets = &reg->counter("fleet.state_resets");
      tel_.battery_blocked = &reg->counter("fleet.battery_blocked");
      tel_.task_switches = &reg->counter("fleet.task_switches");
      tel_.active_clients = &reg->gauge("fleet.active_clients");
    }
    tel_.clients->set(static_cast<double>(config_.num_clients));
    tel_.shards->set(static_cast<double>(shards_.size()));
    tel_.soa_bytes->set(static_cast<double>(soa_bytes()));
  }
}

FleetEngine::~FleetEngine() = default;

std::uint64_t FleetEngine::soa_bytes() const {
  std::uint64_t total = 0;
  for (const ClientShard& shard : shards_) {
    total += shard.soa_bytes();
  }
  return total;
}

FleetResult FleetEngine::run() {
  runtime::ThreadPool pool(config_.threads);
  // Hand the pool to every canonical controller for the duration of this
  // call (it is stack-local): GP/EHVI inner loops fan out when extension
  // runs on the round-loop thread, and run inline (parallel_for_each's
  // re-entry guard) when extension itself runs on a worker.
  for (const std::unique_ptr<ClusterEngine>& cluster : clusters_) {
    cluster->set_parallel_pool(&pool);
  }
  const double cp_ms_start = control_plane_ms_total_;
  const double dp_ms_start = data_plane_ms_total_;
  FleetResult result;
  result.num_clients = config_.num_clients;
  result.num_shards = shards_.size();
  result.num_clusters = clusters_.size();
  result.rounds.reserve(static_cast<std::size_t>(config_.rounds));
  const bool scenario_fields = config_.scenario.has_value();
  std::uint64_t hash = kFnvOffset;
  for (std::int64_t step = 0; step < config_.rounds; ++step) {
    const FleetRoundStats stats = run_round(next_round_++, &pool);
    fold_round(hash, stats, scenario_fields);
    publish_round(stats);
    result.rounds.push_back(stats);
    for (const ClientShard& shard : shards_) {
      result.max_queue_depth =
          std::max(result.max_queue_depth, shard.round_stats.queue_peak);
    }
  }
  result.trace_hash = hash;
  // Knowledge-plane bookkeeping and publish-back.  Distilling a snapshot
  // walks the canonical controller's GP posterior — expensive — so batches
  // are PREPARED in parallel across clusters; the store itself only sees
  // the serial apply loop below, in cluster-index order, so its merged
  // content (and saved bytes) stays shard/thread-layout invariant.  Derived
  // from the canonical trajectories, so (like max_queue_depth) these fields
  // are observability — deliberately NOT folded into trace_hash.
  const auto publish_start = std::chrono::steady_clock::now();
  const bool publishing = config_.knowledge != nullptr &&
                          config_.prior_policy != priors::PriorPolicy::kCold;
  std::vector<ClusterEngine::PublishBatch> batches;
  if (publishing && !config_.serial_control_plane) {
    batches.resize(clusters_.size());
    runtime::parallel_for_each(&pool, clusters_.size(), [&](std::size_t c) {
      batches[c] = clusters_[c]->prepare_publish();
    });
  }
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const ClusterEngine& cluster = *clusters_[c];
    result.exploration_rounds +=
        static_cast<std::uint64_t>(cluster.exploration_entries());
    if (cluster.applied_policy() != priors::PriorPolicy::kCold) {
      ++result.warm_clusters;
    }
    if (publishing) {
      if (batches.empty()) {
        cluster.publish_to(*config_.knowledge);
      } else {
        ClusterEngine::apply_publish(*config_.knowledge, batches[c]);
      }
    }
  }
  control_plane_ms_total_ +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - publish_start)
          .count();
  for (const std::unique_ptr<ClusterEngine>& cluster : clusters_) {
    cluster->set_parallel_pool(nullptr);
  }
  result.control_plane_ms = control_plane_ms_total_ - cp_ms_start;
  result.data_plane_ms = data_plane_ms_total_ - dp_ms_start;
  result.soa_bytes = soa_bytes();
  result.peak_rss_bytes = telemetry::peak_rss_bytes();
  for (const ClientShard& shard : shards_) {
    result.telemetry.merge(shard.telemetry);
  }
  if (tel_.peak_rss != nullptr) {
    tel_.soa_bytes->set(static_cast<double>(result.soa_bytes));
    tel_.peak_rss->set(static_cast<double>(result.peak_rss_bytes));
  }
  return result;
}

FleetRoundStats FleetEngine::run_round(std::int64_t round,
                                       runtime::ThreadPool* pool) {
  const auto round_start = std::chrono::steady_clock::now();
  const faults::FaultInjector* injector =
      injector_.has_value() ? &*injector_ : nullptr;
  const bool fl_faults =
      injector != nullptr && injector->plan().has_fl_faults();
  const std::uint64_t select_base = stream_seed(
      config_.seed ^ kSelectDomain, static_cast<std::uint64_t>(round));

  // Fleet-scenario round state: the diurnal factors are exact functions of
  // the round index; churn draw bases mix fleet seed, scenario seed,
  // domain and round — all layout-independent.
  const faults::FleetScenario* scenario =
      config_.scenario.has_value() ? &*config_.scenario : nullptr;
  double cohort_fraction = config_.cohort_fraction;
  double deadline_factor = 1.0;
  if (scenario != nullptr && scenario->diurnal.enabled()) {
    cohort_fraction = std::clamp(
        cohort_fraction * scenario->diurnal.cohort_factor(round), 0.0, 1.0);
    deadline_factor = scenario->diurnal.deadline_factor(round);
  }
  const bool has_churn = scenario != nullptr && scenario->churn.enabled();
  const bool churn_live = has_churn && round >= scenario->churn.start_round;
  const bool has_battery = scenario != nullptr && scenario->battery.enabled();
  std::uint64_t leave_base = 0;
  std::uint64_t rejoin_base = 0;
  std::uint64_t reset_base = 0;
  if (churn_live) {
    const std::uint64_t churn_seed =
        stream_seed(config_.seed, scenario->seed);
    leave_base = stream_seed(churn_seed ^ kLeaveDomain,
                             static_cast<std::uint64_t>(round));
    rejoin_base = stream_seed(churn_seed ^ kRejoinDomain,
                              static_cast<std::uint64_t>(round));
    reset_base = stream_seed(churn_seed ^ kResetDomain,
                             static_cast<std::uint64_t>(round));
  }

  // Pass 1 (parallel): battery recharge, churn transitions, selection,
  // dropout, battery gate, needed trajectory depth.
  runtime::parallel_for_each(pool, shards_.size(), [&](std::size_t s) {
    ClientShard& shard = shards_[s];
    shard.round_stats = ShardRoundStats{};
    shard.cohort.clear();
    std::fill(shard.needed_entries.begin(), shard.needed_entries.end(), 0U);
    const std::size_t begin = shard.range().begin;
    const std::size_t count = shard.size();
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t client = begin + i;
      if (has_battery) {
        // Every round recharges every client, participant or not.
        shard.battery_uj[i] = std::min(
            battery_capacity_uj_, shard.battery_uj[i] + battery_recharge_uj_);
      }
      if (has_churn) {
        if (churn_live) {
          if (shard.active[i] != 0) {
            if (hash_unit(leave_base, client) < scenario->churn.leave_prob) {
              shard.active[i] = 0;
              ++shard.round_stats.departed;
            }
          } else if (hash_unit(rejoin_base, client) <
                     scenario->churn.rejoin_prob) {
            shard.active[i] = 1;
            ++shard.round_stats.rejoined;
            if (hash_unit(reset_base, client) < scenario->churn.reset_prob) {
              // State lost: the trajectory cursor restarts at entry 0 (the
              // cluster's verification-through-prior entries); the jitter
              // cursor keeps advancing — a re-join is a fresh execution
              // history, not a replay.
              shard.participations[i] = 0;
              ++shard.round_stats.resets;
            }
          }
        }
        if (shard.active[i] == 0) {
          continue;
        }
      }
      ++shard.round_stats.active_clients;
      if (hash_unit(select_base, client) >= cohort_fraction) {
        continue;
      }
      if (fl_faults &&
          injector->client_drops(round, static_cast<std::int64_t>(client))) {
        ++shard.round_stats.dropped;
        ++shard.telemetry.dropouts;
        continue;
      }
      if (has_battery && shard.battery_uj[i] < battery_watermark_uj_) {
        ++shard.round_stats.battery_blocked;
        continue;
      }
      shard.cohort.push_back(static_cast<std::uint32_t>(i));
      std::uint32_t& needed = shard.needed_entries[shard.cluster[i]];
      needed = std::max(needed, shard.participations[i] + 1);
    }
  });

  // Control plane: apply this round's workload switches BEFORE extension (a
  // switch at round r changes every entry generated from round r on), then
  // extend canonical trajectories under the diurnal deadline factor, then
  // draw the round's deadline jitter (one fleet-wide factor, as in
  // fl::Simulation).  Extension fans out over the pool — clusters are
  // independent (own controller, RNG streams, fault channel; the shared
  // ScheduleCache is striped and bit-stable under races) — unless
  // serial_control_plane pins it to this thread.  Either way the fault
  // events buffered during extension flush serially in cluster-index order,
  // so the telemetry stream is identical in both modes.
  const auto control_start = std::chrono::steady_clock::now();
  if (scenario != nullptr) {
    for (const faults::TaskSwitchSpec& ts : scenario->task_switches) {
      if (ts.round != round) {
        continue;
      }
      for (std::size_t c = 0; c < clusters_.size(); ++c) {
        if (ts.cluster >= 0 && ts.cluster != static_cast<std::int64_t>(c)) {
          continue;
        }
        clusters_[c]->switch_workload(
            *device::profile_from_string(ts.profile));
        if (tel_.task_switches != nullptr) {
          tel_.task_switches->add(1);
        }
      }
    }
  }
  // Needed-depth reduction: fold the shards' per-cluster maxima with one
  // parallel pass over clusters (each index reads all shards, writes only
  // its own cell) instead of the old O(clusters x shards) serial loop.
  needed_depth_.assign(clusters_.size(), 0);
  runtime::parallel_for_each(
      config_.serial_control_plane ? nullptr : pool, clusters_.size(),
      [&](std::size_t c) {
        std::uint32_t needed = 0;
        for (const ClientShard& shard : shards_) {
          needed = std::max(needed, shard.needed_entries[c]);
        }
        needed_depth_[c] = needed;
      });
  if (config_.serial_control_plane) {
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
      clusters_[c]->extend_to(needed_depth_[c], deadline_factor);
    }
  } else {
    runtime::parallel_for_each(pool, clusters_.size(), [&](std::size_t c) {
      clusters_[c]->extend_to(needed_depth_[c], deadline_factor);
    });
  }
  for (const std::unique_ptr<ClusterEngine>& cluster : clusters_) {
    cluster->flush_fault_events();
  }
  const double control_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                control_start)
                                .count();
  control_plane_ms_total_ += control_ms;
  if (tel_.control_plane_ms != nullptr) {
    tel_.control_plane_ms->observe(control_ms);
  }
  double deadline_jitter = 1.0;
  if (fl_faults) {
    deadline_jitter = injector->deadline_jitter(round);
    if (deadline_jitter != 1.0) {
      faults::emit_fault_event(
          faults::FaultEvent{faults::FaultKind::kDeadlineJitter, round, -1,
                             0.0, deadline_jitter});
    }
  }

  // Pass 2 (parallel): per-client costs, event pushes, SoA accumulation.
  const double het_cv = config_.heterogeneity_cv;
  const double noise_cv = config_.round_noise_cv;
  const std::uint64_t speed_base = config_.seed ^ kSpeedDomain;
  const std::uint64_t jitter_base = config_.seed ^ kJitterDomain;
  runtime::parallel_for_each(pool, shards_.size(), [&](std::size_t s) {
    ClientShard& shard = shards_[s];
    ShardRoundStats& stats = shard.round_stats;
    const std::size_t begin = shard.range().begin;
    for (const std::uint32_t i : shard.cohort) {
      const std::uint64_t client = begin + i;
      const ClusterEngine& cluster = *clusters_[shard.cluster[i]];
      const ClusterEngine::RoundEntry& entry =
          cluster.entry(shard.participations[i]);
      // The client's silicon/binning factor (lifetime constant) and this
      // participation's execution jitter — both pure functions of ids.
      double speed = 1.0;
      if (het_cv > 0.0) {
        Rng rng(stream_seed(speed_base, client));
        speed = rng.lognormal_mean1(het_cv);
      }
      double lat_jitter = 1.0;
      double energy_jitter = 1.0;
      if (noise_cv > 0.0) {
        Rng rng(stream_seed(stream_seed(jitter_base, client),
                            shard.rng_cursor[i]));
        lat_jitter = rng.lognormal_mean1(noise_cv);
        energy_jitter = rng.lognormal_mean1(noise_cv);
      }
      const std::uint64_t elapsed_us =
          scale_us(entry.elapsed_us, speed * lat_jitter);
      const std::uint64_t energy_uj =
          scale_us(entry.energy_uj, speed * energy_jitter);
      const std::uint64_t mbo_uj = scale_us(entry.mbo_energy_uj, speed);
      const std::uint64_t deadline_us =
          scale_us(entry.deadline_us, deadline_jitter);

      std::uint64_t arrival_us = elapsed_us;
      if (fl_faults) {
        const double factor = injector->straggler_factor(
            round, static_cast<std::int64_t>(client));
        if (factor > 1.0) {
          arrival_us += static_cast<std::uint64_t>(std::llround(
              (factor - 1.0) * static_cast<double>(deadline_us)));
          ++stats.stragglers;
        }
      }
      shard.queue.push({arrival_us, client});
      ++shard.telemetry.events_pushed;
      ++shard.telemetry.selections;

      const bool miss = elapsed_us > deadline_us;
      stats.energy_uj += energy_uj;
      stats.mbo_energy_uj += mbo_uj;
      stats.busy_us += elapsed_us;
      stats.max_deadline_us = std::max(stats.max_deadline_us, deadline_us);
      ++stats.participants;
      stats.missed += miss ? 1U : 0U;
      shard.telemetry.deadline_misses += miss ? 1U : 0U;
      switch (entry.phase) {
        case core::Phase::kSafeRandomExploration:
          ++stats.phase1;
          break;
        case core::Phase::kParetoConstruction:
          ++stats.phase2;
          break;
        case core::Phase::kExploitation:
          ++stats.phase3;
          break;
      }

      shard.participations[i] += 1;
      shard.rng_cursor[i] += 1;
      shard.energy_uj[i] += energy_uj;
      shard.busy_us[i] += elapsed_us;
      shard.misses[i] += miss ? 1U : 0U;
      if (has_battery) {
        // Training and MBO updates both come out of the client's budget.
        const std::uint64_t drain = energy_uj + mbo_uj;
        shard.battery_uj[i] -= std::min(shard.battery_uj[i], drain);
      }
    }
  });

  // Serial: the straggler cutoff needs the fleet-wide reference deadline.
  std::uint64_t deadline_ref_us = 0;
  for (const ClientShard& shard : shards_) {
    deadline_ref_us =
        std::max(deadline_ref_us, shard.round_stats.max_deadline_us);
  }
  std::optional<std::uint64_t> cutoff_us;
  if (config_.straggler_timeout > 0.0 && deadline_ref_us > 0) {
    cutoff_us = static_cast<std::uint64_t>(
        std::llround(config_.straggler_timeout *
                     static_cast<double>(deadline_ref_us)));
  }

  // Pass 3 (parallel): drain each shard's event queue in (time, client)
  // order; the round wall and timeout counts come out of the drain.  A
  // timed-out report was discarded by the server, so the client's replay
  // cursor rolls back to retry the SAME trajectory entry next time it is
  // selected — without the resync it would re-enter the next round pointing
  // one entry past work that never counted.  (rng_cursor stays advanced: the
  // retry is a fresh execution with fresh jitter.)
  runtime::parallel_for_each(pool, shards_.size(), [&](std::size_t s) {
    ClientShard& shard = shards_[s];
    shard.timed_out_clients.clear();
    const RoundClose<std::uint64_t> close =
        close_round(shard.queue, cutoff_us, &shard.timed_out_clients);
    const std::size_t begin = shard.range().begin;
    for (const std::uint64_t client : shard.timed_out_clients) {
      shard.participations[client - begin] -= 1;
    }
    shard.round_stats.wall_us = close.wall;
    shard.round_stats.timed_out = static_cast<std::uint32_t>(close.timed_out);
    shard.round_stats.queue_peak = shard.queue.peak_depth();
    shard.queue.reset_peak();
  });

  // Serial: merge in shard order (integer adds + maxes — layout-invariant).
  ShardRoundStats merged;
  for (const ClientShard& shard : shards_) {
    merged.merge(shard.round_stats);
  }
  FleetRoundStats out;
  out.round = round;
  out.energy_uj = merged.energy_uj;
  out.mbo_energy_uj = merged.mbo_energy_uj;
  out.busy_us = merged.busy_us;
  out.wall_us = merged.wall_us;
  out.deadline_ref_us = deadline_ref_us;
  out.participants = merged.participants;
  out.dropped = merged.dropped;
  out.missed = merged.missed;
  out.stragglers = merged.stragglers;
  out.timed_out = merged.timed_out;
  out.phase1 = merged.phase1;
  out.phase2 = merged.phase2;
  out.phase3 = merged.phase3;
  out.active_clients = merged.active_clients;
  out.departed = merged.departed;
  out.rejoined = merged.rejoined;
  out.resets = merged.resets;
  out.battery_blocked = merged.battery_blocked;
  data_plane_ms_total_ +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - round_start)
          .count() -
      control_ms;
  return out;
}

void FleetEngine::publish_round(const FleetRoundStats& stats) {
  if (tel_.rounds == nullptr) {
    return;
  }
  tel_.rounds->add(1);
  tel_.participants->add(stats.participants);
  tel_.dropouts->add(stats.dropped);
  tel_.misses->add(stats.missed);
  tel_.stragglers->add(stats.stragglers);
  tel_.timed_out->add(stats.timed_out);
  tel_.events->add(stats.participants);
  for (const ClientShard& shard : shards_) {
    tel_.queue_depth->observe(
        static_cast<double>(shard.round_stats.queue_peak));
  }
  tel_.round_energy->observe(stats.energy_j());
  if (tel_.departed != nullptr) {
    tel_.departed->add(stats.departed);
    tel_.rejoined->add(stats.rejoined);
    tel_.state_resets->add(stats.resets);
    tel_.battery_blocked->add(stats.battery_blocked);
    tel_.active_clients->set(static_cast<double>(stats.active_clients));
  }
  tel_.peak_rss->set(static_cast<double>(telemetry::peak_rss_bytes()));
}

}  // namespace bofl::fleet
