// The sharded fleet engine: 10^5–10^6 BoFL clients on one machine.
//
// Architecture (DESIGN.md §6f):
//   * Client state lives in struct-of-arrays shards (client_shard.hpp),
//     ~30 bytes per client, one contiguous id range per shard.
//   * Each cluster (device model × workload) runs ONE canonical pace
//     controller whose per-participation trajectory all cluster members
//     replay, scaled by pure-hash per-client heterogeneity and jitter
//     (cluster.hpp).  Steady-state per-client cost is O(1); controller
//     work is O(clusters), not O(clients).
//   * Round progression is event-driven: every participant pushes one
//     completion event into its shard's queue; the drain in (timestamp,
//     client-id) order replaces per-client polling (event_queue.hpp).
//   * Each round is three parallel shard passes with serial merges between:
//       pass 1  selection + dropout + needed-trajectory-depth   (parallel)
//       —— extend cluster trajectories, draw deadline jitter    (serial)
//       pass 2  per-client costs, event pushes, SoA updates     (parallel)
//       —— straggler cutoff from the fleet-wide max deadline    (serial)
//       pass 3  queue drain → round wall / timed-out counts     (parallel)
//       —— stats merge, trace hash, telemetry                   (serial)
//
// Determinism: every per-client draw is a pure hash of (seed, domain tag,
// ids) — never of shard or thread identity — and every cross-shard
// reduction is an integer add (modular, associative) or max, over values
// quantized to whole microseconds / microjoules.  Fleet traces are
// therefore bit-identical at any shard count and any --threads; the
// fleet_determinism tests pin this down, TSan keeps it honest.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "device/device_model.hpp"
#include "faults/fault_injector.hpp"
#include "fleet/client_shard.hpp"
#include "fleet/cluster.hpp"
#include "fleet/fleet_config.hpp"
#include "ilp/schedule_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::fleet {

/// One fleet round, in the engine's exact integer units.  Equality is
/// bitwise, so tests compare whole traces across shard/thread counts.
struct FleetRoundStats {
  std::int64_t round = 0;
  std::uint64_t energy_uj = 0;        ///< cohort training energy
  std::uint64_t mbo_energy_uj = 0;    ///< cohort MBO update energy
  std::uint64_t busy_us = 0;          ///< summed cohort training time
  std::uint64_t wall_us = 0;          ///< round wall (last counted arrival)
  std::uint64_t deadline_ref_us = 0;  ///< largest effective cohort deadline
  std::uint32_t participants = 0;
  std::uint32_t dropped = 0;
  std::uint32_t missed = 0;     ///< training exceeded the effective deadline
  std::uint32_t stragglers = 0;
  std::uint32_t timed_out = 0;  ///< reports past the straggler cutoff
  std::uint32_t phase1 = 0;     ///< participants whose entry was explored…
  std::uint32_t phase2 = 0;     ///< …under the canonical controller's phase
  std::uint32_t phase3 = 0;
  // Fleet-scenario population fields.  Only folded into trace_hash when a
  // scenario is attached, so scenario-free traces keep their historical
  // hashes (fleet_golden_hash_test).
  std::uint32_t active_clients = 0;   ///< clients present after churn
  std::uint32_t departed = 0;         ///< left the fleet this round
  std::uint32_t rejoined = 0;         ///< returned this round
  std::uint32_t resets = 0;           ///< re-joins that lost their state
  std::uint32_t battery_blocked = 0;  ///< selected but below the watermark

  [[nodiscard]] double energy_j() const { return 1e-6 * double(energy_uj); }
  [[nodiscard]] double mbo_energy_j() const {
    return 1e-6 * double(mbo_energy_uj);
  }
  [[nodiscard]] double wall_s() const { return 1e-6 * double(wall_us); }

  friend bool operator==(const FleetRoundStats&,
                         const FleetRoundStats&) = default;
};

struct FleetResult {
  std::vector<FleetRoundStats> rounds;
  /// FNV-1a over every round's integer fields in round order — one number
  /// that must match across shard/thread counts.
  std::uint64_t trace_hash = 0;
  std::uint64_t soa_bytes = 0;      ///< SoA footprint across all shards
  std::uint64_t peak_rss_bytes = 0; ///< process VmHWM after the run
  /// Deepest any shard's event queue ever got.  Observability only — queue
  /// depth tracks per-shard cohort size, so unlike everything in `rounds`
  /// it legitimately depends on the shard layout and is NOT in trace_hash.
  std::uint64_t max_queue_depth = 0;
  /// Knowledge-plane headline metrics (derived from per-cluster counters
  /// after the round loop, so — like max_queue_depth — NOT in trace_hash):
  /// total canonical trajectory entries spent outside exploitation, and how
  /// many clusters started from an admitted prior.
  std::uint64_t exploration_rounds = 0;
  std::uint32_t warm_clusters = 0;
  /// Wall-time split of this run() call: the cluster control plane (task
  /// switches, needed-depth reduction, trajectory extension, fault-event
  /// flush, end-of-run prior distillation) vs everything else (the shard
  /// data plane + merges).  Timing is observability — host-dependent, so
  /// (like max_queue_depth) NOT in trace_hash and not part of equality.
  double control_plane_ms = 0.0;
  double data_plane_ms = 0.0;
  std::size_t num_clients = 0;
  std::size_t num_shards = 0;
  std::size_t num_clusters = 0;
  ShardTelemetry telemetry;  ///< merged per-shard registries

  [[nodiscard]] double total_energy_j() const;
  [[nodiscard]] double total_mbo_energy_j() const;
  [[nodiscard]] std::uint64_t total_participants() const;
  // Scenario population totals (all zero for scenario-free runs).
  [[nodiscard]] std::uint64_t total_departed() const;
  [[nodiscard]] std::uint64_t total_rejoined() const;
  [[nodiscard]] std::uint64_t total_resets() const;
  [[nodiscard]] std::uint64_t total_battery_blocked() const;
  [[nodiscard]] double miss_rate() const;     ///< misses / participations
  [[nodiscard]] double timeout_rate() const;  ///< timed-out / participations
  /// SoA bytes per client — the flat-memory figure the bench reports.
  [[nodiscard]] double bytes_per_client() const;
  /// Fraction of participations replaying an exploitation-phase entry.
  [[nodiscard]] double phase3_fraction() const;
};

/// The engine's trace hash, as a free function: FNV-1a over every round's
/// integer fields in round order.  `scenario_fields` must match whether the
/// producing engine ran with a scenario attached (scenario-free traces keep
/// the historical field set so their golden hashes survive).  Exposed so
/// the scenario harness can hash a stepped run's concatenated rounds and
/// compare it against a single-shot run's FleetResult::trace_hash.
[[nodiscard]] std::uint64_t fold_trace_hash(
    const std::vector<FleetRoundStats>& rounds, bool scenario_fields);

class FleetEngine {
 public:
  /// Builds shards, clusters and the shared schedule cache.  Throws on an
  /// invalid config (no clients, zero-weight mix, > 65535 clusters).
  explicit FleetEngine(FleetConfig config);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Run config.rounds rounds.  Reentrant across calls: a second run()
  /// continues the fleet from its current state — client cursors advance
  /// AND the absolute round index keeps counting, so N stepped calls of
  /// one round replay exactly the rounds of one N-round call (the
  /// scenario harness samples per-round cluster state this way).
  [[nodiscard]] FleetResult run();

  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t num_clusters() const { return clusters_.size(); }
  [[nodiscard]] const ClusterEngine& cluster(std::size_t i) const {
    return *clusters_[i];
  }
  /// Total SoA footprint (all shards).
  [[nodiscard]] std::uint64_t soa_bytes() const;

 private:
  /// Metric handles resolved once from the global registry (all null when
  /// telemetry is off).
  struct Telemetry {
    telemetry::Counter* rounds = nullptr;
    telemetry::Counter* participants = nullptr;
    telemetry::Counter* dropouts = nullptr;
    telemetry::Counter* misses = nullptr;
    telemetry::Counter* stragglers = nullptr;
    telemetry::Counter* timed_out = nullptr;
    telemetry::Counter* events = nullptr;
    telemetry::Gauge* clients = nullptr;
    telemetry::Gauge* shards = nullptr;
    telemetry::Gauge* soa_bytes = nullptr;
    telemetry::Gauge* peak_rss = nullptr;
    telemetry::Histogram* queue_depth = nullptr;
    telemetry::Histogram* round_energy = nullptr;
    telemetry::Histogram* control_plane_ms = nullptr;
    // Fleet-scenario population metrics (registered only when a scenario
    // is attached).
    telemetry::Counter* departed = nullptr;
    telemetry::Counter* rejoined = nullptr;
    telemetry::Counter* state_resets = nullptr;
    telemetry::Counter* battery_blocked = nullptr;
    telemetry::Counter* task_switches = nullptr;
    telemetry::Gauge* active_clients = nullptr;
  };

  [[nodiscard]] FleetRoundStats run_round(std::int64_t round,
                                          runtime::ThreadPool* pool);
  void publish_round(const FleetRoundStats& stats);

  FleetConfig config_;
  /// Device models backing the default cluster mix (kept alive here when
  /// the caller passed an empty `config.clusters`).
  std::vector<device::DeviceModel> owned_models_;
  std::vector<ClusterSpec> specs_;
  std::vector<double> cluster_cdf_;  ///< cumulative normalized weights
  std::unique_ptr<ilp::ScheduleCache> cache_;
  std::optional<faults::FaultInjector> injector_;
  std::vector<std::unique_ptr<ClusterEngine>> clusters_;
  std::vector<ClientShard> shards_;
  Telemetry tel_;
  /// Absolute round cursor: the next round index run() will execute.
  std::int64_t next_round_ = 0;
  /// Per-cluster needed trajectory depth for the upcoming round, folded
  /// from the shards' per-cluster maxima (scratch, sized to clusters_).
  std::vector<std::uint32_t> needed_depth_;
  /// Lifetime wall-time accumulators behind FleetResult's split: run()
  /// snapshots them on entry and reports the deltas, so stepped runs
  /// attribute time to the call that spent it.
  double control_plane_ms_total_ = 0.0;
  double data_plane_ms_total_ = 0.0;
  // Battery budget in the engine's integer units (0 when the scenario has
  // no battery process).
  std::uint64_t battery_capacity_uj_ = 0;
  std::uint64_t battery_recharge_uj_ = 0;
  std::uint64_t battery_watermark_uj_ = 0;
};

}  // namespace bofl::fleet
