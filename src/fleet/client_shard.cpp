#include "fleet/client_shard.hpp"

#include <algorithm>

namespace bofl::fleet {

void ShardRoundStats::merge(const ShardRoundStats& other) {
  energy_uj += other.energy_uj;
  mbo_energy_uj += other.mbo_energy_uj;
  busy_us += other.busy_us;
  wall_us = std::max(wall_us, other.wall_us);
  max_deadline_us = std::max(max_deadline_us, other.max_deadline_us);
  queue_peak = std::max(queue_peak, other.queue_peak);
  participants += other.participants;
  dropped += other.dropped;
  missed += other.missed;
  stragglers += other.stragglers;
  timed_out += other.timed_out;
  phase1 += other.phase1;
  phase2 += other.phase2;
  phase3 += other.phase3;
  active_clients += other.active_clients;
  departed += other.departed;
  rejoined += other.rejoined;
  resets += other.resets;
  battery_blocked += other.battery_blocked;
}

void ShardTelemetry::merge(const ShardTelemetry& other) {
  events_pushed += other.events_pushed;
  selections += other.selections;
  dropouts += other.dropouts;
  deadline_misses += other.deadline_misses;
}

ClientShard::ClientShard(runtime::ShardRange range) : range_(range) {
  const std::size_t n = range_.size();
  cluster.resize(n, 0);
  participations.resize(n, 0);
  rng_cursor.resize(n, 0);
  energy_uj.resize(n, 0);
  busy_us.resize(n, 0);
  misses.resize(n, 0);
}

std::uint64_t ClientShard::soa_bytes() const {
  return static_cast<std::uint64_t>(
      cluster.capacity() * sizeof(std::uint16_t) +
      participations.capacity() * sizeof(std::uint32_t) +
      rng_cursor.capacity() * sizeof(std::uint32_t) +
      energy_uj.capacity() * sizeof(std::uint64_t) +
      busy_us.capacity() * sizeof(std::uint64_t) +
      misses.capacity() * sizeof(std::uint32_t) +
      active.capacity() * sizeof(std::uint8_t) +
      battery_uj.capacity() * sizeof(std::uint64_t));
}

}  // namespace bofl::fleet
