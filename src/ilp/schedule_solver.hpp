// The per-round exploitation problem (paper Eqn. 1, single round):
//
//   minimize   sum_k  n_k * E_k
//   s.t.       sum_k  n_k        = W          (all jobs executed)
//              sum_k  n_k * T_k <= deadline   (round deadline met)
//              n_k >= 0, integer
//
// over the (approximated) Pareto set of measured configurations
// {(E_k, T_k)}.  Solved by branch-and-bound ILP; an exhaustive reference
// solver cross-checks optimality in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/branch_and_bound.hpp"

namespace bofl::ilp {

/// One measured configuration eligible for scheduling.
struct ConfigProfile {
  std::size_t config_id = 0;      ///< caller-defined identity (DVFS index)
  double energy_per_job = 0.0;    ///< E_k  [J]
  double latency_per_job = 0.0;   ///< T_k  [s]
};

/// Job assignment for one round.
struct Schedule {
  bool feasible = false;
  /// (index into the profiles vector passed in, jobs assigned); only
  /// entries with a positive job count are listed.
  std::vector<std::pair<std::size_t, std::int64_t>> assignments;
  double total_energy = 0.0;
  double total_latency = 0.0;
};

/// A profile set with Pareto-dominated entries removed, plus the mapping
/// back to the caller's indexing.  `profiles[i]` is a copy of the input's
/// `kept[i]`-th entry; input order is preserved among survivors.
struct PrunedProfiles {
  std::vector<ConfigProfile> profiles;
  std::vector<std::size_t> kept;
};

/// Remove profiles Pareto-dominated in (energy, latency); exact duplicates
/// keep only the lowest-index copy.  O(k^2).  Idempotent: pruning an
/// already-pruned set returns it unchanged with the identity mapping —
/// which is what lets callers (BoflController) hoist this out of the
/// per-round loop and re-run it only when the observed Pareto set changes.
[[nodiscard]] PrunedProfiles prune_dominated_profiles(
    const std::vector<ConfigProfile>& profiles);

/// Solve the round problem over `profiles`.  Dominated profiles are pruned
/// before the ILP (a dominated configuration can never appear in an optimal
/// schedule; §3.2).  Returns feasible == false when even the fastest
/// profile cannot meet the deadline.
[[nodiscard]] Schedule solve_round_schedule(
    const std::vector<ConfigProfile>& profiles, std::int64_t num_jobs,
    double deadline_seconds, const IlpOptions& options = {});

/// Same round problem, but `pruned` MUST already be dominance-free (the
/// output of prune_dominated_profiles).  Skips the O(k^2) prune; returned
/// assignment indices refer to `pruned` itself.  With the prune hoisted,
/// solve_round_schedule(P, ...) is bit-identical to solving
/// prune_dominated_profiles(P).profiles here and mapping indices through
/// .kept — the per-profile doubles, constraint build order, warm-start
/// search and branch-and-bound trajectory are all unchanged.
[[nodiscard]] Schedule solve_round_schedule_pruned(
    const std::vector<ConfigProfile>& pruned, std::int64_t num_jobs,
    double deadline_seconds, const IlpOptions& options = {});

/// Exhaustive reference solver (exponential; tests only).  Enumerates all
/// compositions of num_jobs over the profiles.  Requires the search space
/// C(num_jobs + k - 1, k - 1) to stay under ~2e6 nodes.
[[nodiscard]] Schedule solve_round_schedule_exhaustive(
    const std::vector<ConfigProfile>& profiles, std::int64_t num_jobs,
    double deadline_seconds);

}  // namespace bofl::ilp
