#include "ilp/schedule_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace bofl::ilp {

namespace {

/// Indices of profiles not Pareto-dominated in (energy, latency).
std::vector<std::size_t> efficient_profiles(
    const std::vector<ConfigProfile>& profiles) {
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < profiles.size() && !dominated; ++j) {
      if (i == j) {
        continue;
      }
      const bool no_worse =
          profiles[j].energy_per_job <= profiles[i].energy_per_job &&
          profiles[j].latency_per_job <= profiles[i].latency_per_job;
      const bool strictly_better =
          profiles[j].energy_per_job < profiles[i].energy_per_job ||
          profiles[j].latency_per_job < profiles[i].latency_per_job;
      // Tie-break exact duplicates by index so exactly one survives.
      const bool duplicate_priority =
          profiles[j].energy_per_job == profiles[i].energy_per_job &&
          profiles[j].latency_per_job == profiles[i].latency_per_job && j < i;
      dominated = (no_worse && strictly_better) || duplicate_priority;
    }
    if (!dominated) {
      kept.push_back(i);
    }
  }
  return kept;
}

Schedule finalize(const std::vector<ConfigProfile>& profiles,
                  const std::vector<std::size_t>& kept,
                  const std::vector<std::int64_t>& counts) {
  Schedule schedule;
  schedule.feasible = true;
  for (std::size_t k = 0; k < kept.size(); ++k) {
    if (counts[k] > 0) {
      const std::size_t original = kept[k];
      schedule.assignments.emplace_back(original, counts[k]);
      const auto jobs = static_cast<double>(counts[k]);
      schedule.total_energy += jobs * profiles[original].energy_per_job;
      schedule.total_latency += jobs * profiles[original].latency_per_job;
    }
  }
  return schedule;
}

}  // namespace

PrunedProfiles prune_dominated_profiles(
    const std::vector<ConfigProfile>& profiles) {
  PrunedProfiles pruned;
  pruned.kept = efficient_profiles(profiles);
  pruned.profiles.reserve(pruned.kept.size());
  for (std::size_t i : pruned.kept) {
    pruned.profiles.push_back(profiles[i]);
  }
  return pruned;
}

Schedule solve_round_schedule(const std::vector<ConfigProfile>& profiles,
                              std::int64_t num_jobs, double deadline_seconds,
                              const IlpOptions& options) {
  // Validate the full input (including profiles the prune would discard).
  BOFL_REQUIRE(!profiles.empty(), "need at least one configuration profile");
  BOFL_REQUIRE(num_jobs >= 0, "job count must be non-negative");
  BOFL_REQUIRE(deadline_seconds >= 0.0, "deadline must be non-negative");
  for (const ConfigProfile& p : profiles) {
    BOFL_REQUIRE(p.energy_per_job >= 0.0 && p.latency_per_job > 0.0,
                 "profiles need non-negative energy and positive latency");
  }
  if (num_jobs == 0) {
    Schedule empty;
    empty.feasible = true;
    return empty;
  }
  const PrunedProfiles pruned = prune_dominated_profiles(profiles);
  Schedule schedule = solve_round_schedule_pruned(pruned.profiles, num_jobs,
                                                  deadline_seconds, options);
  for (auto& assignment : schedule.assignments) {
    assignment.first = pruned.kept[assignment.first];
  }
  return schedule;
}

Schedule solve_round_schedule_pruned(const std::vector<ConfigProfile>& pruned,
                                     std::int64_t num_jobs,
                                     double deadline_seconds,
                                     const IlpOptions& options) {
  BOFL_REQUIRE(!pruned.empty(), "need at least one configuration profile");
  BOFL_REQUIRE(num_jobs >= 0, "job count must be non-negative");
  BOFL_REQUIRE(deadline_seconds >= 0.0, "deadline must be non-negative");
  for (const ConfigProfile& p : pruned) {
    BOFL_REQUIRE(p.energy_per_job >= 0.0 && p.latency_per_job > 0.0,
                 "profiles need non-negative energy and positive latency");
  }
  if (num_jobs == 0) {
    Schedule empty;
    empty.feasible = true;
    return empty;
  }

  const std::vector<ConfigProfile>& profiles = pruned;
  const std::size_t k = profiles.size();

  // Quick feasibility check: the fastest profile bounds what any schedule
  // can achieve.
  double fastest = std::numeric_limits<double>::infinity();
  for (const ConfigProfile& p : profiles) {
    fastest = std::min(fastest, p.latency_per_job);
  }
  if (fastest * static_cast<double>(num_jobs) > deadline_seconds + 1e-9) {
    return {};
  }

  LpProblem problem;
  problem.objective.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    problem.objective[i] = profiles[i].energy_per_job;
  }
  LpConstraint all_jobs;
  all_jobs.coefficients.assign(k, 1.0);
  all_jobs.relation = Relation::kEqual;
  all_jobs.rhs = static_cast<double>(num_jobs);
  problem.constraints.push_back(std::move(all_jobs));
  LpConstraint deadline;
  deadline.coefficients.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    deadline.coefficients[i] = profiles[i].latency_per_job;
  }
  deadline.relation = Relation::kLessEqual;
  deadline.rhs = deadline_seconds;
  problem.constraints.push_back(std::move(deadline));

  IlpOptions tuned = options;
  if (tuned.relative_gap == 0.0) {
    // 0.01 % energy tolerance — two orders of magnitude below the power
    // sensor's noise floor.  Without it the branch-and-bound burns
    // thousands of nodes certifying the last hundredth of a joule on dense
    // Pareto fronts (the warm start below is already optimal or within a
    // whisker of it).
    tuned.relative_gap = 1e-4;
  }
  if (tuned.warm_start.empty()) {
    // Warm start with the best two-profile mix, found exactly in O(k^2):
    // the LP optimum of a 2-constraint problem mixes at most two profiles,
    // so this incumbent is almost always the true integer optimum and the
    // branch-and-bound merely certifies it.
    double best_energy = std::numeric_limits<double>::infinity();
    std::vector<std::int64_t> best(k, 0);
    bool found = false;
    const auto jobs = static_cast<double>(num_jobs);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        const double ti = profiles[i].latency_per_job;
        const double tj = profiles[j].latency_per_job;
        const double ei = profiles[i].energy_per_job;
        const double ej = profiles[j].energy_per_job;
        // n jobs at profile i, the rest at j; the deadline needs
        //   n * ti + (W - n) * tj <= D.
        std::int64_t n = 0;
        if (i == j) {
          if (ti * jobs > deadline_seconds + 1e-9) {
            continue;
          }
          n = num_jobs;
        } else if (ti < tj) {
          // Need enough fast jobs: n >= (W * tj - D) / (tj - ti).
          const double lower = (jobs * tj - deadline_seconds) / (tj - ti);
          n = std::max<std::int64_t>(
              0, static_cast<std::int64_t>(std::ceil(lower - 1e-9)));
          if (n > num_jobs) {
            continue;
          }
          // Energy is linear in n: take the cheaper end of [n, W].
          if (ei < ej) {
            n = num_jobs;
          }
        } else {
          continue;  // covered by the symmetric (j, i) case
        }
        const auto n_d = static_cast<double>(n);
        const double energy = ei * n_d + ej * (jobs - n_d);
        if (energy < best_energy) {
          best_energy = energy;
          std::fill(best.begin(), best.end(), 0);
          best[i] += n;
          best[j] += num_jobs - n;
          found = true;
        }
      }
    }
    if (found) {
      tuned.warm_start = std::move(best);  // validated inside solve_ilp
    }
  }

  const IlpSolution ilp = solve_ilp(problem, tuned);
  if (ilp.status != IlpStatus::kOptimal) {
    return {};
  }
  std::vector<std::size_t> identity(k);
  for (std::size_t i = 0; i < k; ++i) {
    identity[i] = i;
  }
  return finalize(profiles, identity, ilp.x);
}

Schedule solve_round_schedule_exhaustive(
    const std::vector<ConfigProfile>& profiles, std::int64_t num_jobs,
    double deadline_seconds) {
  BOFL_REQUIRE(!profiles.empty(), "need at least one configuration profile");
  const std::size_t k = profiles.size();
  // Guard the exponential enumeration (tests use small instances only).
  double space = 1.0;
  for (std::size_t i = 1; i < k; ++i) {
    space *= static_cast<double>(num_jobs + static_cast<std::int64_t>(i)) /
             static_cast<double>(i);
  }
  BOFL_REQUIRE(space < 2e6, "exhaustive schedule search space too large");

  std::vector<std::int64_t> counts(k, 0);
  std::vector<std::int64_t> best_counts;
  double best_energy = std::numeric_limits<double>::infinity();

  // Recursive composition enumeration.
  auto recurse = [&](auto&& self, std::size_t index,
                     std::int64_t remaining) -> void {
    if (index + 1 == k) {
      counts[index] = remaining;
      double energy = 0.0;
      double latency = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        energy += static_cast<double>(counts[i]) * profiles[i].energy_per_job;
        latency += static_cast<double>(counts[i]) * profiles[i].latency_per_job;
      }
      if (latency <= deadline_seconds + 1e-9 && energy < best_energy) {
        best_energy = energy;
        best_counts = counts;
      }
      return;
    }
    for (std::int64_t c = 0; c <= remaining; ++c) {
      counts[index] = c;
      self(self, index + 1, remaining - c);
    }
  };
  recurse(recurse, 0, num_jobs);

  if (best_counts.empty()) {
    return {};
  }
  std::vector<std::size_t> identity(k);
  for (std::size_t i = 0; i < k; ++i) {
    identity[i] = i;
  }
  return finalize(profiles, identity, best_counts);
}

}  // namespace bofl::ilp
