// Branch-and-bound integer linear programming on top of the simplex LP.
//
// All variables are required to be non-negative integers.  The solver
// performs best-first branch and bound: each node's LP relaxation gives a
// lower bound; a fractional variable is branched into floor/ceil children
// by appending bound constraints.  The paper's exploitation step (§4.4)
// names exactly this algorithm family ("we solve the ILP problem with
// branch-and-bound").
#pragma once

#include <cstdint>

#include "ilp/lp.hpp"

namespace bofl::ilp {

struct IlpOptions {
  /// Hard cap on explored B&B nodes; a hit is reported via node_limit_hit.
  std::size_t max_nodes = 100000;
  /// Values within this distance of an integer are considered integral.
  double integrality_tolerance = 1e-6;
  /// Accept incumbents within this relative gap of the best bound: nodes
  /// with bound >= incumbent * (1 - gap) are pruned.  0 = prove exact
  /// optimality.  The schedule solver uses a sub-micro-joule gap, far below
  /// measurement noise, to avoid pathological tail exploration.
  double relative_gap = 0.0;
  /// Escape hatch for differential testing: when these options reach a
  /// ScheduleCache (directly or through BoflController / fl::Simulation),
  /// true bypasses the memo entirely and every round problem is re-solved
  /// from scratch.  solve_ilp itself ignores this flag.
  bool disable_cache = false;
  /// Optional feasible warm-start solution used as the initial incumbent
  /// (validated against the constraints; ignored if infeasible).  A good
  /// incumbent collapses the search: best-first B&B without one must
  /// blunder into its first integral node before any pruning happens.
  std::vector<std::int64_t> warm_start;
};

enum class IlpStatus { kOptimal, kInfeasible, kNodeLimit };

struct IlpSolution {
  IlpStatus status = IlpStatus::kInfeasible;
  std::vector<std::int64_t> x;  ///< valid iff status == kOptimal
  double objective = 0.0;       ///< valid iff status == kOptimal
  std::size_t nodes_explored = 0;
};

/// Minimize problem.objective over non-negative integer vectors satisfying
/// problem.constraints.  The continuous relaxation must be bounded (the
/// schedule problems always are because of the job-count equality).
[[nodiscard]] IlpSolution solve_ilp(const LpProblem& problem,
                                    const IlpOptions& options = {});

}  // namespace bofl::ilp
