#include "ilp/branch_and_bound.hpp"

#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace bofl::ilp {

namespace {

struct Node {
  // Extra variable bounds accumulated along the branching path, encoded as
  // plain constraints appended to the base problem.
  std::vector<LpConstraint> extra;
  double lower_bound = -std::numeric_limits<double>::infinity();

  // Best-first: smaller LP bound explored first.
  friend bool operator<(const Node& a, const Node& b) {
    return a.lower_bound > b.lower_bound;  // priority_queue is a max-heap
  }
};

/// Index of the "most fractional" coordinate, or x.size() if all integral.
std::size_t most_fractional(const std::vector<double>& x, double tol) {
  std::size_t best = x.size();
  double best_distance = tol;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double frac = x[i] - std::floor(x[i]);
    const double distance = std::min(frac, 1.0 - frac);
    if (distance > best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

LpConstraint bound_constraint(std::size_t var, std::size_t n, Relation rel,
                              double rhs) {
  LpConstraint c;
  c.coefficients.assign(n, 0.0);
  c.coefficients[var] = 1.0;
  c.relation = rel;
  c.rhs = rhs;
  return c;
}

}  // namespace

namespace {

/// Check a candidate integral point against every constraint.
bool is_feasible(const LpProblem& problem,
                 const std::vector<std::int64_t>& x) {
  if (x.size() != problem.num_variables()) {
    return false;
  }
  for (const std::int64_t v : x) {
    if (v < 0) {
      return false;
    }
  }
  for (const LpConstraint& c : problem.constraints) {
    double lhs = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      lhs += c.coefficients[i] * static_cast<double>(x[i]);
    }
    switch (c.relation) {
      case Relation::kLessEqual:
        if (lhs > c.rhs + 1e-7) {
          return false;
        }
        break;
      case Relation::kGreaterEqual:
        if (lhs < c.rhs - 1e-7) {
          return false;
        }
        break;
      case Relation::kEqual:
        if (std::abs(lhs - c.rhs) > 1e-7) {
          return false;
        }
        break;
    }
  }
  return true;
}

double objective_of(const LpProblem& problem,
                    const std::vector<std::int64_t>& x) {
  double value = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    value += problem.objective[i] * static_cast<double>(x[i]);
  }
  return value;
}

}  // namespace

IlpSolution solve_ilp(const LpProblem& problem, const IlpOptions& options) {
  const std::size_t n = problem.num_variables();
  BOFL_REQUIRE(n > 0, "ILP needs at least one variable");

  IlpSolution best;
  best.status = IlpStatus::kInfeasible;
  double incumbent = std::numeric_limits<double>::infinity();
  if (!options.warm_start.empty() && is_feasible(problem, options.warm_start)) {
    incumbent = objective_of(problem, options.warm_start);
    best.status = IlpStatus::kOptimal;
    best.objective = incumbent;
    best.x = options.warm_start;
  }

  std::priority_queue<Node> open;
  open.push(Node{});

  std::size_t nodes = 0;
  bool node_limit_hit = false;
  while (!open.empty()) {
    if (nodes >= options.max_nodes) {
      node_limit_hit = true;
      break;
    }
    Node node = open.top();
    open.pop();
    const double prune_margin =
        std::max(1e-12, options.relative_gap * std::abs(incumbent));
    if (node.lower_bound >= incumbent - prune_margin) {
      continue;  // cannot (meaningfully) beat the incumbent
    }
    ++nodes;

    LpProblem relaxation = problem;
    relaxation.constraints.insert(relaxation.constraints.end(),
                                  node.extra.begin(), node.extra.end());
    const LpSolution lp = solve_lp(relaxation);
    if (lp.status == LpStatus::kInfeasible) {
      continue;
    }
    BOFL_ASSERT(lp.status == LpStatus::kOptimal,
                "ILP relaxation must be bounded");
    if (lp.objective >= incumbent - prune_margin) {
      continue;
    }

    const std::size_t branch_var =
        most_fractional(lp.x, options.integrality_tolerance);
    if (branch_var == n) {
      // Integral solution: new incumbent.
      incumbent = lp.objective;
      best.status = IlpStatus::kOptimal;
      best.objective = lp.objective;
      best.x.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        best.x[i] = static_cast<std::int64_t>(std::llround(lp.x[i]));
      }
      continue;
    }

    const double value = lp.x[branch_var];
    Node down;
    down.extra = node.extra;
    down.extra.push_back(bound_constraint(branch_var, n, Relation::kLessEqual,
                                          std::floor(value)));
    down.lower_bound = lp.objective;
    open.push(std::move(down));

    Node up;
    up.extra = node.extra;
    up.extra.push_back(bound_constraint(branch_var, n, Relation::kGreaterEqual,
                                        std::ceil(value)));
    up.lower_bound = lp.objective;
    open.push(std::move(up));
  }

  best.nodes_explored = nodes;
  if (best.status != IlpStatus::kOptimal && node_limit_hit) {
    best.status = IlpStatus::kNodeLimit;
  }
  return best;
}

}  // namespace bofl::ilp
