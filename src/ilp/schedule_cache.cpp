#include "ilp/schedule_cache.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::ilp {

namespace {

std::uint64_t bits_of(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::uint64_t fnv1a(const std::vector<std::uint64_t>& words) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::uint64_t w : words) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (w >> (8 * byte)) & 0xffULL;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

void count(const char* name, std::uint64_t n = 1) {
  if (telemetry::Registry* reg = telemetry::global_registry()) {
    reg->counter(name).add(n);
  }
}

}  // namespace

ScheduleCache::Key ScheduleCache::make_key(
    const std::vector<ConfigProfile>& pruned, std::int64_t num_jobs,
    double deadline_seconds, const IlpOptions& options) const {
  Key key;
  key.words.reserve(2 * pruned.size() + 5);
  for (const ConfigProfile& p : pruned) {
    key.words.push_back(bits_of(p.energy_per_job));
    key.words.push_back(bits_of(p.latency_per_job));
  }
  key.words.push_back(static_cast<std::uint64_t>(num_jobs));
  const double quantum = options_.deadline_quantum;
  key.words.push_back(quantum > 0.0
                          ? bits_of(std::floor(deadline_seconds / quantum))
                          : bits_of(deadline_seconds));
  key.words.push_back(static_cast<std::uint64_t>(options.max_nodes));
  key.words.push_back(bits_of(options.integrality_tolerance));
  key.words.push_back(bits_of(options.relative_gap));
  key.hash = fnv1a(key.words);
  return key;
}

Schedule ScheduleCache::solve(const std::vector<ConfigProfile>& profiles,
                              std::int64_t num_jobs, double deadline_seconds,
                              const IlpOptions& options) {
  if (options.disable_cache) {
    return solve_round_schedule(profiles, num_jobs, deadline_seconds, options);
  }
  // Mirror solve_round_schedule's prologue so validation still covers the
  // profiles the prune would discard.
  BOFL_REQUIRE(!profiles.empty(), "need at least one configuration profile");
  BOFL_REQUIRE(num_jobs >= 0, "job count must be non-negative");
  BOFL_REQUIRE(deadline_seconds >= 0.0, "deadline must be non-negative");
  for (const ConfigProfile& p : profiles) {
    BOFL_REQUIRE(p.energy_per_job >= 0.0 && p.latency_per_job > 0.0,
                 "profiles need non-negative energy and positive latency");
  }
  if (num_jobs == 0) {
    Schedule empty;
    empty.feasible = true;
    return empty;
  }
  const PrunedProfiles pruned = prune_dominated_profiles(profiles);
  Schedule schedule =
      solve_pruned(pruned.profiles, num_jobs, deadline_seconds, options);
  for (auto& assignment : schedule.assignments) {
    assignment.first = pruned.kept[assignment.first];
  }
  return schedule;
}

std::unique_lock<std::mutex> ScheduleCache::lock_stripe(Stripe& stripe) {
  std::unique_lock<std::mutex> lock(stripe.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    stripe.waits.fetch_add(1, std::memory_order_relaxed);
    count("ilp.cache_stripe_waits");
    lock.lock();
  }
  return lock;
}

bool ScheduleCache::wipe_if_full() {
  // Take every stripe lock in index order (deadlock-free: this is the only
  // multi-stripe path), then re-check capacity — a concurrent wipe may have
  // already emptied the table between the caller's check and here.
  std::array<std::unique_lock<std::mutex>, kStripeCount> locks;
  for (std::size_t s = 0; s < kStripeCount; ++s) {
    locks[s] = lock_stripe(stripes_[s]);
  }
  if (total_entries_.load(std::memory_order_relaxed) < options_.max_entries) {
    return false;
  }
  for (Stripe& stripe : stripes_) {
    stripe.entries.clear();
    stripe.count.store(0, std::memory_order_relaxed);
  }
  total_entries_.store(0, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  count("ilp.cache_evictions");
  return true;
}

Schedule ScheduleCache::solve_pruned(const std::vector<ConfigProfile>& pruned,
                                     std::int64_t num_jobs,
                                     double deadline_seconds,
                                     const IlpOptions& options) {
  // A caller-supplied warm start steers the search itself; don't mix such
  // solves into (or serve them from) the shared memo.
  if (options.disable_cache || !options.warm_start.empty() || num_jobs == 0) {
    return solve_round_schedule_pruned(pruned, num_jobs, deadline_seconds,
                                       options);
  }
  const Key key = make_key(pruned, num_jobs, deadline_seconds, options);
  Stripe& stripe = stripe_for(key);

  IlpOptions tuned = options;
  bool warm_started = false;
  {
    std::unique_lock<std::mutex> lock = lock_stripe(stripe);
    auto it = stripe.entries.find(key);
    if (it != stripe.entries.end()) {
      stripe.hits.fetch_add(1, std::memory_order_relaxed);
      count("ilp.cache_hit");
      return it->second;
    }
  }
  stripe.misses.fetch_add(1, std::memory_order_relaxed);
  count("ilp.cache_miss");
  if (options_.warm_start_resolves) {
    std::lock_guard<std::mutex> warm_lock(warm_mutex_);
    if (last_num_jobs_ == num_jobs && last_counts_.size() == pruned.size()) {
      tuned.warm_start = last_counts_;  // validated inside solve_ilp
      warm_started = true;
      warm_starts_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (warm_started) {
    count("ilp.cache_warm_start");
  }

  // Solve outside any lock: distinct round problems from different threads
  // proceed in parallel.  A same-key race costs one duplicate solve of a
  // deterministic problem — both threads store identical bits.
  const Schedule schedule =
      solve_round_schedule_pruned(pruned, num_jobs, deadline_seconds, tuned);

  if (total_entries_.load(std::memory_order_relaxed) >= options_.max_entries) {
    wipe_if_full();
  }
  {
    std::unique_lock<std::mutex> lock = lock_stripe(stripe);
    auto [it, inserted] = stripe.entries.emplace(key, schedule);
    (void)it;
    if (inserted) {
      stripe.count.fetch_add(1, std::memory_order_relaxed);
      total_entries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (options_.warm_start_resolves && schedule.feasible) {
    std::lock_guard<std::mutex> warm_lock(warm_mutex_);
    last_counts_.assign(pruned.size(), 0);
    for (const auto& [index, jobs] : schedule.assignments) {
      last_counts_[index] = jobs;
    }
    last_num_jobs_ = num_jobs;
  }
  return schedule;
}

ScheduleCache::Stats ScheduleCache::stats() const {
  Stats stats;
  for (const Stripe& stripe : stripes_) {
    stats.hits += stripe.hits.load(std::memory_order_relaxed);
    stats.misses += stripe.misses.load(std::memory_order_relaxed);
    stats.stripe_waits += stripe.waits.load(std::memory_order_relaxed);
  }
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t ScheduleCache::size() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.count.load(std::memory_order_relaxed);
  }
  return total;
}

void ScheduleCache::clear() {
  std::array<std::unique_lock<std::mutex>, kStripeCount> locks;
  for (std::size_t s = 0; s < kStripeCount; ++s) {
    locks[s] = lock_stripe(stripes_[s]);
  }
  for (Stripe& stripe : stripes_) {
    stripe.entries.clear();
    stripe.count.store(0, std::memory_order_relaxed);
  }
  total_entries_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> warm_lock(warm_mutex_);
  last_counts_.clear();
  last_num_jobs_ = -1;
}

}  // namespace bofl::ilp
