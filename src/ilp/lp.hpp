// Dense linear programming via the two-phase primal simplex method.
//
// This backs the branch-and-bound ILP solver used for BoFL's per-round
// exploitation problem (Eqn. 1).  Problems are tiny (a handful of
// constraints, tens of variables), so a dense tableau with Bland's
// anti-cycling rule is simple, exact enough, and fast.
//
// Canonical form accepted:   minimize c^T x
//                            s.t.  a_i^T x  {<=, ==, >=}  b_i   for each row
//                                  x >= 0
#pragma once

#include <vector>

namespace bofl::ilp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct LpConstraint {
  std::vector<double> coefficients;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

struct LpProblem {
  /// Objective coefficients (minimization).
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;

  [[nodiscard]] std::size_t num_variables() const { return objective.size(); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;       ///< valid iff status == kOptimal
  double objective = 0.0;      ///< valid iff status == kOptimal
};

/// Solve with two-phase primal simplex.  Right-hand sides may be negative
/// (rows are normalized internally).  Throws std::invalid_argument on
/// malformed input (mismatched row widths).
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem);

}  // namespace bofl::ilp
