// Memoization for the per-round exploitation ILP (paper Eqn. 1).
//
// In steady state (~90 % of FL rounds are phase-3 exploitation) the round
// problem barely changes: a cohort of clients sharing one device model and
// task converges onto the same Pareto set, job count and deadline, yet
// every client re-runs the same branch-and-bound each round.  ScheduleCache
// memoizes solve_round_schedule keyed on the exact bits of the canonical
// (dominance-pruned) profile set x job count x deadline x solver options,
// so each distinct round problem is solved once per fleet.
//
// Bit-identity: a hit returns the stored Schedule, which a fresh solve of
// the same key would reproduce bit-for-bit (the solver is deterministic and
// keys compare exact doubles), so enabling the cache never changes any
// simulation output — asserted cache-on vs cache-off, serial vs pooled, by
// tests/scenarios.  The two opt-in knobs that trade this away are
// documented on ScheduleCacheOptions.
//
// Thread safety: all methods may be called concurrently (fl::Simulation
// shares one instance across its client threads, and the fleet engine's
// parallel control plane shares one across concurrently-extending
// clusters).  The table is striped: each key hashes to one of
// kStripeCount independent (mutex, map) stripes, so clusters solving
// distinct round problems almost never serialize on a lock.  Misses solve
// OUTSIDE any lock so distinct problems solve in parallel.  If two
// threads race on the same key both solve it and store the same bits —
// wasted work, never wrong results.  Stats are relaxed atomics per
// stripe, summed on read, so telemetry scrapes never contend with solves.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ilp/schedule_solver.hpp"

namespace bofl::ilp {

struct ScheduleCacheOptions {
  /// Entry cap; reaching it wipes the cache (steady-state keys re-insert
  /// within a round, and a wipe can only cost re-solves, never wrong bits).
  std::size_t max_entries = 4096;
  /// 0 (default): deadlines are keyed on their exact bits — required for
  /// the bit-identity guarantee.  > 0: deadlines are bucketed to
  /// floor(deadline / quantum) for keying, so rounds whose deadlines differ
  /// by less than one quantum share an entry (the hit returns the schedule
  /// solved for the FIRST deadline seen in the bucket).  Raises hit rates
  /// under drifting deadlines at the cost of exactness; leave at 0 unless
  /// the deadline slack dwarfs the quantum.
  double deadline_quantum = 0.0;
  /// Opt-in: seed each miss's branch-and-bound incumbent with the most
  /// recently solved schedule (when its shape fits the new problem).  This
  /// SKIPS the solver's own O(k^2) two-profile warm start and, under a
  /// nonzero relative_gap, a different incumbent can change which
  /// near-optimal schedule is certified — so re-solves are no longer
  /// bit-identical to cold solves and results may depend on solve order.
  /// Off by default; never enabled by the simulation paths.
  bool warm_start_resolves = false;
};

class ScheduleCache {
 public:
  explicit ScheduleCache(ScheduleCacheOptions options = {})
      : options_(options) {}

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Drop-in replacement for solve_round_schedule (same contract, same
  /// bits).  Prunes dominated profiles, consults the memo on the canonical
  /// set, and maps assignment indices back to `profiles`.
  [[nodiscard]] Schedule solve(const std::vector<ConfigProfile>& profiles,
                               std::int64_t num_jobs, double deadline_seconds,
                               const IlpOptions& options = {});

  /// Memoized solve_round_schedule_pruned: `pruned` MUST already be
  /// dominance-free (see that function's contract); assignment indices
  /// refer to `pruned`.  This is the hot entry — BoflController keeps its
  /// Pareto set pruned per version and calls this directly.
  [[nodiscard]] Schedule solve_pruned(
      const std::vector<ConfigProfile>& pruned, std::int64_t num_jobs,
      double deadline_seconds, const IlpOptions& options = {});

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;     ///< whole-cache wipes at max_entries
    std::uint64_t warm_starts = 0;   ///< misses seeded by warm_start_resolves
    std::uint64_t stripe_waits = 0;  ///< lock acquisitions that had to block
  };
  /// Lock-free: sums the per-stripe relaxed atomics.  Exact once the cache
  /// is quiescent; during concurrent solves a scrape may see a count that
  /// is mid-update by one, never torn.
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Number of independently-locked stripes (fixed, power of two).
  static constexpr std::size_t kStripeCount = 16;

 private:
  struct Key {
    /// Exact bit patterns: per profile (energy, latency), then job count,
    /// the (possibly bucketed) deadline word, and the solver options that
    /// steer the search (max_nodes, integrality_tolerance, relative_gap).
    /// config_id is deliberately excluded — assignments are positional and
    /// the solver never reads it.
    std::vector<std::uint64_t> words;
    std::uint64_t hash = 0;
    bool operator==(const Key& other) const { return words == other.words; }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return static_cast<std::size_t>(key.hash);
    }
  };

  [[nodiscard]] Key make_key(const std::vector<ConfigProfile>& pruned,
                             std::int64_t num_jobs, double deadline_seconds,
                             const IlpOptions& options) const;

  /// One lock + map per stripe; stats are relaxed atomics so stats()/size()
  /// never take a lock.  Keys land on the stripe named by the TOP bits of
  /// their FNV-1a hash — the map itself consumes the low bits, so stripe
  /// choice and in-stripe bucketing stay independent.
  struct Stripe {
    std::mutex mutex;
    std::unordered_map<Key, Schedule, KeyHash> entries;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> waits{0};
    std::atomic<std::size_t> count{0};
  };

  [[nodiscard]] Stripe& stripe_for(const Key& key) const {
    return stripes_[static_cast<std::size_t>(key.hash >> 60) %
                    kStripeCount];
  }
  /// Locks `stripe.mutex`, counting the acquisition as a stripe wait (both
  /// in stripe.waits and the ilp.cache_stripe_waits counter) when the lock
  /// was contended.
  static std::unique_lock<std::mutex> lock_stripe(Stripe& stripe);
  /// Wipes every stripe if the approximate total is still at/over capacity
  /// once all stripe locks are held.  Returns true if a wipe happened.
  bool wipe_if_full();

  ScheduleCacheOptions options_;
  mutable std::array<Stripe, kStripeCount> stripes_;
  /// Approximate live-entry total driving the capacity wipe; exact when
  /// quiescent, may lag by in-flight inserts under contention.
  std::atomic<std::size_t> total_entries_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> warm_starts_{0};
  /// warm_start_resolves state: counts of the most recent pruned-space
  /// solve, reused as the next miss's incumbent when shapes line up.
  /// Guarded by its own mutex — the opt-in knob is inherently
  /// order-dependent, so contention here is irrelevant to the default path.
  mutable std::mutex warm_mutex_;
  std::vector<std::int64_t> last_counts_;
  std::int64_t last_num_jobs_ = -1;
};

}  // namespace bofl::ilp
