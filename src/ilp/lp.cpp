#include "ilp/lp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace bofl::ilp {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau.  Rows = constraints, columns = all variables
/// (structural + slack/surplus + artificial) plus the RHS column.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), cells_(rows * (cols + 1), 0.0) {}

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return cells_[r * (cols_ + 1) + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return cells_[r * (cols_ + 1) + c];
  }
  [[nodiscard]] double& rhs(std::size_t r) { return at(r, cols_); }
  [[nodiscard]] double rhs(std::size_t r) const { return at(r, cols_); }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Gaussian pivot on (pivot_row, pivot_col).
  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    const double p = at(pivot_row, pivot_col);
    BOFL_ASSERT(std::abs(p) > kEps, "degenerate simplex pivot");
    for (std::size_t c = 0; c <= cols_; ++c) {
      at(pivot_row, c) /= p;
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) {
        continue;
      }
      const double factor = at(r, pivot_col);
      if (std::abs(factor) < kEps) {
        continue;
      }
      for (std::size_t c = 0; c <= cols_; ++c) {
        at(r, c) -= factor * at(pivot_row, c);
      }
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;
};

struct SimplexState {
  Tableau tableau;
  std::vector<std::size_t> basis;  ///< basis[r] = column basic in row r
};

/// Reduced costs for objective `c` (length = tableau cols; zero-padded) in
/// the current basis: z_j = c_j - c_B^T B^{-1} A_j, computed directly from
/// the tableau (which already stores B^{-1} A).
std::vector<double> reduced_costs(const SimplexState& s,
                                  const std::vector<double>& c) {
  const Tableau& t = s.tableau;
  std::vector<double> z(t.cols(), 0.0);
  for (std::size_t j = 0; j < t.cols(); ++j) {
    double value = j < c.size() ? c[j] : 0.0;
    for (std::size_t r = 0; r < t.rows(); ++r) {
      const double cb = s.basis[r] < c.size() ? c[s.basis[r]] : 0.0;
      if (cb != 0.0) {
        value -= cb * t.at(r, j);
      }
    }
    z[j] = value;
  }
  return z;
}

double basis_objective(const SimplexState& s, const std::vector<double>& c) {
  double value = 0.0;
  for (std::size_t r = 0; r < s.tableau.rows(); ++r) {
    const double cb = s.basis[r] < c.size() ? c[s.basis[r]] : 0.0;
    value += cb * s.tableau.rhs(r);
  }
  return value;
}

enum class PhaseResult { kOptimal, kUnbounded };

/// Run primal simplex with Bland's rule until optimality or unboundedness.
/// `allowed` masks the columns eligible to enter (used in phase 2 to keep
/// artificials out).
PhaseResult run_simplex(SimplexState& s, const std::vector<double>& c,
                        const std::vector<bool>& allowed) {
  // Bland's rule terminates finitely, so this loop cannot cycle; the guard
  // is belt-and-braces against numerical trouble.
  const std::size_t max_pivots = 50 * (s.tableau.rows() + s.tableau.cols()) + 1000;
  for (std::size_t iter = 0; iter < max_pivots; ++iter) {
    const std::vector<double> z = reduced_costs(s, c);
    // Bland: entering column = smallest index with negative reduced cost.
    std::size_t entering = s.tableau.cols();
    for (std::size_t j = 0; j < s.tableau.cols(); ++j) {
      if (allowed[j] && z[j] < -kEps) {
        entering = j;
        break;
      }
    }
    if (entering == s.tableau.cols()) {
      return PhaseResult::kOptimal;
    }
    // Ratio test: leaving row minimizes rhs / a_rj over a_rj > 0; Bland
    // tie-break on the smallest basis column index.
    std::size_t leaving = s.tableau.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < s.tableau.rows(); ++r) {
      const double a = s.tableau.at(r, entering);
      if (a > kEps) {
        const double ratio = s.tableau.rhs(r) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && leaving < s.tableau.rows() &&
             s.basis[r] < s.basis[leaving])) {
          best_ratio = ratio;
          leaving = r;
        }
      }
    }
    if (leaving == s.tableau.rows()) {
      return PhaseResult::kUnbounded;
    }
    s.tableau.pivot(leaving, entering);
    s.basis[leaving] = entering;
  }
  BOFL_ASSERT(false, "simplex exceeded its pivot budget");
}

}  // namespace

LpSolution solve_lp(const LpProblem& problem) {
  const std::size_t n = problem.num_variables();
  BOFL_REQUIRE(n > 0, "LP needs at least one variable");
  for (const LpConstraint& row : problem.constraints) {
    BOFL_REQUIRE(row.coefficients.size() == n,
                 "constraint width must match variable count");
  }
  const std::size_t m = problem.constraints.size();

  // Normalize rows to non-negative RHS, then count auxiliary columns.
  struct Row {
    std::vector<double> a;
    Relation rel;
    double b;
  };
  std::vector<Row> rows;
  rows.reserve(m);
  for (const LpConstraint& c : problem.constraints) {
    Row row{c.coefficients, c.relation, c.rhs};
    if (row.b < 0.0) {
      for (double& v : row.a) {
        v = -v;
      }
      row.b = -row.b;
      if (row.rel == Relation::kLessEqual) {
        row.rel = Relation::kGreaterEqual;
      } else if (row.rel == Relation::kGreaterEqual) {
        row.rel = Relation::kLessEqual;
      }
    }
    rows.push_back(std::move(row));
  }

  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const Row& row : rows) {
    if (row.rel != Relation::kEqual) {
      ++num_slack;
    }
    if (row.rel != Relation::kLessEqual) {
      ++num_artificial;
    }
  }
  const std::size_t total_cols = n + num_slack + num_artificial;

  SimplexState state{Tableau(m, total_cols), std::vector<std::size_t>(m, 0)};
  std::size_t slack_col = n;
  std::size_t artificial_col = n + num_slack;
  std::vector<bool> is_artificial(total_cols, false);
  for (std::size_t r = 0; r < m; ++r) {
    const Row& row = rows[r];
    for (std::size_t j = 0; j < n; ++j) {
      state.tableau.at(r, j) = row.a[j];
    }
    state.tableau.rhs(r) = row.b;
    switch (row.rel) {
      case Relation::kLessEqual:
        state.tableau.at(r, slack_col) = 1.0;
        state.basis[r] = slack_col++;
        break;
      case Relation::kGreaterEqual:
        state.tableau.at(r, slack_col) = -1.0;  // surplus
        ++slack_col;
        state.tableau.at(r, artificial_col) = 1.0;
        is_artificial[artificial_col] = true;
        state.basis[r] = artificial_col++;
        break;
      case Relation::kEqual:
        state.tableau.at(r, artificial_col) = 1.0;
        is_artificial[artificial_col] = true;
        state.basis[r] = artificial_col++;
        break;
    }
  }

  std::vector<bool> all_columns(total_cols, true);

  // Phase 1: minimize the sum of artificial variables.
  if (num_artificial > 0) {
    std::vector<double> phase1_objective(total_cols, 0.0);
    for (std::size_t j = 0; j < total_cols; ++j) {
      if (is_artificial[j]) {
        phase1_objective[j] = 1.0;
      }
    }
    const PhaseResult result =
        run_simplex(state, phase1_objective, all_columns);
    BOFL_ASSERT(result == PhaseResult::kOptimal,
                "phase-1 LP cannot be unbounded");
    if (basis_objective(state, phase1_objective) > 1e-7) {
      return {LpStatus::kInfeasible, {}, 0.0};
    }
    // Pivot any artificial still (degenerately) basic out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[state.basis[r]]) {
        continue;
      }
      bool pivoted = false;
      for (std::size_t j = 0; j < total_cols && !pivoted; ++j) {
        if (!is_artificial[j] &&
            std::abs(state.tableau.at(r, j)) > kEps) {
          state.tableau.pivot(r, j);
          state.basis[r] = j;
          pivoted = true;
        }
      }
      // If no pivot exists the row is all-zero (redundant constraint); the
      // artificial stays basic at value 0, which is harmless in phase 2 as
      // long as it cannot re-enter (masked below).
    }
  }

  // Phase 2: minimize the real objective, artificial columns barred.
  std::vector<bool> allowed(total_cols, true);
  for (std::size_t j = 0; j < total_cols; ++j) {
    if (is_artificial[j]) {
      allowed[j] = false;
    }
  }
  std::vector<double> phase2_objective(total_cols, 0.0);
  std::copy(problem.objective.begin(), problem.objective.end(),
            phase2_objective.begin());
  const PhaseResult result = run_simplex(state, phase2_objective, allowed);
  if (result == PhaseResult::kUnbounded) {
    return {LpStatus::kUnbounded, {}, 0.0};
  }

  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (state.basis[r] < n) {
      solution.x[state.basis[r]] = state.tableau.rhs(r);
    }
  }
  solution.objective = basis_objective(state, phase2_objective);
  return solution;
}

}  // namespace bofl::ilp
