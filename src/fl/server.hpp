// The FL central server (paper Figure 1): holds the global model, selects
// participants each round, assigns deadlines, and aggregates local updates
// with FedAvg (example-count weighted averaging).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "fl/client.hpp"

namespace bofl::fl {

class FedAvgServer {
 public:
  explicit FedAvgServer(std::vector<float> initial_parameters);

  [[nodiscard]] const std::vector<float>& parameters() const {
    return parameters_;
  }

  /// Select `count` distinct participants out of `pool_size` clients.
  [[nodiscard]] std::vector<std::size_t> select_participants(
      std::size_t pool_size, std::size_t count, Rng& rng) const;

  /// FedAvg: parameters <- sum_i w_i * params_i / sum_i w_i,
  /// w_i = num_examples.  Updates from clients that missed their training
  /// deadline or reported late are dropped (the paper's workflow, Figure 1
  /// step 3).
  /// Returns the number of accepted updates.
  std::size_t aggregate(const std::vector<LocalUpdate>& updates);

 private:
  std::vector<float> parameters_;
};

}  // namespace bofl::fl
