// Server-side deadline assignment (paper §2.1).
//
// BoFL is deliberately agnostic to how the server picks deadlines: "any
// deadline assignment algorithm, either strategically designing round
// deadlines or using a static timeout value, can function well with BoFL".
// This module provides the three families the paper cites:
//
//   * StaticTimeoutPolicy  — the vanilla FL design [Bonawitz et al.]: one
//     fixed timeout for every round.
//   * UniformSlackPolicy   — the paper's own evaluation protocol (§6.1):
//     deadlines uniform in [T_min, ratio * T_min] of the selected cohort.
//   * AdaptiveSlackPolicy  — SmartPC/AutoFL-flavoured: starts with a
//     generous slack and tightens it geometrically while clients keep
//     making their deadlines, backing off on any miss.
//
// All policies work from `cohort_t_min`, the server's estimate of the
// fastest possible round time of the round's slowest selected participant.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace bofl::fl {

/// Fastest feasible round time of a selected cohort: the slowest selected
/// participant's T_min plus a fixed per-round overhead (the upload
/// allowance in reporting-deadline mode, zero otherwise).  This is *the*
/// feasibility floor every DeadlinePolicy::assign() consumes; the round
/// loop and the static-timeout setup share it so the check lives in one
/// place.  Requires a non-empty cohort with positive per-client T_min.
[[nodiscard]] Seconds cohort_deadline_floor(
    const std::vector<Seconds>& client_t_min,
    const std::vector<std::size_t>& participants,
    Seconds per_round_overhead = Seconds{0.0});

/// The floor when *every* client could be selected (a cohort of everyone);
/// what a static timeout — which cannot react per cohort — must cover.
[[nodiscard]] Seconds fleet_deadline_floor(
    const std::vector<Seconds>& client_t_min);

class DeadlinePolicy {
 public:
  virtual ~DeadlinePolicy() = default;

  /// Deadline for `round`, given the cohort's estimated minimum round time.
  [[nodiscard]] virtual Seconds assign(std::int64_t round,
                                       Seconds cohort_t_min) = 0;

  /// Feed back whether every selected client met the assigned deadline
  /// (adaptive policies learn from this; others ignore it).
  virtual void record_outcome(bool all_met) { (void)all_met; }

  [[nodiscard]] virtual const char* name() const = 0;
};

/// One fixed timeout, whatever the cohort looks like.
class StaticTimeoutPolicy final : public DeadlinePolicy {
 public:
  explicit StaticTimeoutPolicy(Seconds timeout);

  [[nodiscard]] Seconds assign(std::int64_t round,
                               Seconds cohort_t_min) override;
  [[nodiscard]] const char* name() const override { return "static-timeout"; }

 private:
  Seconds timeout_;
};

/// Uniform in [T_min, ratio * T_min] — the paper's §6.1 protocol.
class UniformSlackPolicy final : public DeadlinePolicy {
 public:
  UniformSlackPolicy(double max_over_min_ratio, std::uint64_t seed);

  [[nodiscard]] Seconds assign(std::int64_t round,
                               Seconds cohort_t_min) override;
  [[nodiscard]] const char* name() const override { return "uniform-slack"; }

 private:
  double ratio_;
  Rng rng_;
};

/// Multiplicative-decrease slack: deadline = slack * cohort_t_min, with
/// slack tightened by `tighten` after each fully-successful round and
/// relaxed by `backoff` after any miss, clamped to [min_slack, max_slack].
class AdaptiveSlackPolicy final : public DeadlinePolicy {
 public:
  struct Config {
    double initial_slack = 3.0;
    double min_slack = 1.2;
    double max_slack = 4.0;
    double tighten = 0.97;  ///< multiplier after an all-met round
    double backoff = 1.3;   ///< multiplier after a missed round
  };

  AdaptiveSlackPolicy();  // default Config
  explicit AdaptiveSlackPolicy(Config config);

  [[nodiscard]] Seconds assign(std::int64_t round,
                               Seconds cohort_t_min) override;
  void record_outcome(bool all_met) override;
  [[nodiscard]] const char* name() const override { return "adaptive-slack"; }

  [[nodiscard]] double current_slack() const { return slack_; }

 private:
  Config config_;
  double slack_;
};

}  // namespace bofl::fl
