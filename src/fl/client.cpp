#include "fl/client.hpp"

#include "common/error.hpp"

namespace bofl::fl {

Client::Client(std::size_t id, nn::Dataset shard, ModelFactory factory,
               double learning_rate, std::int64_t minibatch_size,
               std::unique_ptr<core::PaceController> controller)
    : id_(id),
      shard_(std::move(shard)),
      model_(factory()),
      optimizer_(learning_rate),
      minibatch_size_(minibatch_size),
      controller_(std::move(controller)) {
  BOFL_REQUIRE(minibatch_size_ > 0, "minibatch size must be positive");
  BOFL_REQUIRE(shard_.size() >= static_cast<std::size_t>(minibatch_size_),
               "shard smaller than one minibatch");
  BOFL_REQUIRE(controller_ != nullptr, "client needs a pace controller");
}

std::int64_t Client::num_minibatches() const {
  return static_cast<std::int64_t>(shard_.size()) / minibatch_size_;
}

LocalUpdate Client::train_round(const std::vector<float>& global,
                                std::int64_t epochs,
                                const core::RoundSpec& round) {
  BOFL_REQUIRE(epochs > 0, "need at least one epoch");
  model_.set_flat_parameters(global);

  // Learning: real minibatch SGD on the shard.
  nn::SoftmaxCrossEntropy loss;
  double loss_sum = 0.0;
  std::int64_t steps = 0;
  const std::int64_t batches = num_minibatches();
  for (std::int64_t epoch = 0; epoch < epochs; ++epoch) {
    for (std::int64_t b = 0; b < batches; ++b) {
      const nn::Dataset batch =
          shard_.slice(static_cast<std::size_t>(b * minibatch_size_),
                       static_cast<std::size_t>(minibatch_size_));
      model_.zero_gradients();
      const nn::Tensor logits = model_.forward(batch.features);
      loss_sum += loss.forward(logits, batch.labels);
      model_.backward(loss.backward());
      optimizer_.step(model_);
      ++steps;
    }
  }

  // Pacing: the same job count, accounted by the controller against the
  // round deadline.
  core::RoundSpec pace_round = round;
  pace_round.num_jobs = steps;
  LocalUpdate update;
  update.client_id = id_;
  update.pace_trace = controller_->run_round(pace_round);
  update.parameters = model_.get_flat_parameters();
  update.num_examples = steps * minibatch_size_;
  update.mean_loss = loss_sum / static_cast<double>(steps);
  return update;
}

Evaluation evaluate(nn::Sequential& model, const nn::Dataset& data,
                    std::int64_t minibatch_size) {
  BOFL_REQUIRE(minibatch_size > 0, "minibatch size must be positive");
  nn::SoftmaxCrossEntropy loss;
  double loss_sum = 0.0;
  double accuracy_sum = 0.0;
  std::int64_t batches = 0;
  const auto n = static_cast<std::int64_t>(data.size());
  for (std::int64_t begin = 0; begin + minibatch_size <= n;
       begin += minibatch_size) {
    const nn::Dataset batch = data.slice(static_cast<std::size_t>(begin),
                                         static_cast<std::size_t>(minibatch_size));
    const nn::Tensor logits = model.forward(batch.features);
    loss_sum += loss.forward(logits, batch.labels);
    accuracy_sum += nn::accuracy(loss.predictions(), batch.labels);
    ++batches;
  }
  BOFL_REQUIRE(batches > 0, "evaluation set smaller than one minibatch");
  return {loss_sum / static_cast<double>(batches),
          accuracy_sum / static_cast<double>(batches)};
}

}  // namespace bofl::fl
