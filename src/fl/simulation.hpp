// End-to-end federated simulation: a FedAvg server, a pool of simulated
// edge devices each running a pace controller, real local SGD, simulated
// time and energy.  This is the integration layer the paper's Figure 1
// describes; the per-device experiments of §6 use the core harness
// directly, while the fleet-level examples and tests use this.
#pragma once

#include <memory>
#include <optional>

#include "core/bofl_controller.hpp"
#include "device/device_model.hpp"
#include "faults/fault_plan.hpp"
#include "fl/client.hpp"
#include "fl/deadline_policy.hpp"
#include "fl/network.hpp"
#include "fl/server.hpp"
#include "priors/prior_policy.hpp"

namespace bofl::priors {
class KnowledgeStore;
}

namespace bofl::fl {

enum class ControllerKind {
  kBofl,
  kPerformant,
  kOracle,
  kLinear,
};

[[nodiscard]] const char* to_string(ControllerKind kind);

/// How the server assigns round deadlines (fl/deadline_policy.hpp).
enum class DeadlinePolicyKind {
  kUniformSlack,   ///< the paper's §6.1 protocol (default)
  kStaticTimeout,  ///< vanilla FL: one fixed timeout
  kAdaptiveSlack,  ///< tighten-on-success / back-off-on-miss
};

[[nodiscard]] const char* to_string(DeadlinePolicyKind kind);

/// Which model architecture the fleet trains.
enum class FleetModel {
  kMlp,   ///< Gaussian-blob classification (image-task stand-in)
  kLstm,  ///< sequence classification (IMDB-LSTM stand-in)
};

struct FlSimulationConfig {
  std::size_t num_clients = 12;
  std::size_t clients_per_round = 4;
  std::int64_t rounds = 20;
  std::int64_t epochs = 1;
  std::int64_t minibatch_size = 16;
  std::size_t shard_examples = 256;   ///< per client
  std::size_t test_examples = 512;
  double learning_rate = 0.1;
  double deadline_ratio = 2.0;        ///< T_max / T_min
  ControllerKind controller = ControllerKind::kBofl;
  std::uint64_t seed = 1;
  // Model / data geometry.
  std::size_t feature_dim = 16;
  std::size_t classes = 8;
  std::size_t hidden = 32;
  std::size_t depth = 2;
  /// Hardware footprint billed per minibatch job.
  device::WorkloadProfile profile = device::vit_profile();
  /// Non-IID skew of client shards (0 = IID).
  double shard_skew = 1.0;
  /// Pace-controller tuning for BoFL clients.  Fleet simulations often use
  /// small shards, so τ defaults to a fraction of the round rather than the
  /// paper's 5 s; set explicitly to override.  mbo_cost is always replaced
  /// by the device-calibrated model.
  core::BoflOptions bofl_options{};
  bool auto_scale_tau = true;

  /// Model architecture; kLstm switches the data to sequences and (unless
  /// overridden) the hardware footprint to the LSTM profile.
  FleetModel model = FleetModel::kMlp;
  std::size_t sequence_length = 8;  ///< kLstm only

  /// Server deadline policy.
  DeadlinePolicyKind deadline_policy = DeadlinePolicyKind::kUniformSlack;
  double static_timeout_slack = 2.5;  ///< kStaticTimeout: timeout/T_min
  AdaptiveSlackPolicy::Config adaptive_slack{};

  /// Client dropout (paper Fig. 1: "drop out or miss deadline?"): each
  /// selected participant independently drops before training with this
  /// probability (battery died, user closed the app, ...).
  double dropout_probability = 0.0;

  /// Fault injection (src/faults): device-level episodes run through each
  /// client's controller observer, FL-level kinds (stragglers, dropouts,
  /// deadline jitter) through the round loop.  All fault events land in the
  /// telemetry stream.  Unset = clean run.
  std::optional<faults::FaultPlan> fault_plan;
  /// Server-side straggler handling: wait at most this multiple of the
  /// round deadline for late reports before closing the round (bounds
  /// FlRoundStats::round_wall; reports past the cutoff count as timed out).
  /// 0 = wait for every report (seed behavior).
  double straggler_timeout = 0.0;
  /// Replace dropped-out participants with fresh draws from the remaining
  /// pool (serial, round-loop RNG) so the cohort keeps its size.
  bool backfill_dropouts = false;

  /// Reporting-deadline mode (§3.1 footnote 3): the server's deadline also
  /// covers the model upload; each client infers its training deadline
  /// through a bandwidth-measuring ReportingDeadlineAdapter.
  bool reporting_deadline_mode = false;
  double uplink_mbps = 5.0;  ///< paper's 4G-LTE example (§6.5 footnote)
  double uplink_cv = 0.25;
  double upload_safety_factor = 1.25;

  /// Share one ilp::ScheduleCache across the fleet's BoFL controllers so a
  /// cohort of clients facing the same round problem (identical Pareto
  /// set, job count, deadline) runs branch-and-bound once instead of once
  /// per client.  Bit-identical on or off, for any `threads` value (the
  /// cache keys on exact bits and the solver is deterministic); the
  /// bofl_options.ilp.disable_cache escape hatch additionally bypasses an
  /// attached cache per solve.  Ignored for non-BoFL controllers.
  bool share_schedule_cache = true;

  /// Fleet knowledge plane (src/priors).  When set, every BoFL client asks
  /// the store for its (device model × workload) cluster's prior under
  /// `prior_policy` at construction, and after the run each client publishes
  /// back (outcome feedback always; a distilled snapshot when it reached
  /// exploitation), in client-id order so the store content is independent
  /// of `threads`.  Non-owning; must outlive the simulation.  nullptr = no
  /// knowledge plane; kCold keeps an attached store read-only and the run
  /// bit-identical to one without a store.
  priors::KnowledgeStore* knowledge = nullptr;
  priors::PriorPolicy prior_policy = priors::PriorPolicy::kVerify;

  /// Worker threads for the per-round client fan-out (runtime subsystem);
  /// 0 = one per hardware thread, 1 = fully serial.  Results are
  /// bit-identical for every value — clients within a round are independent
  /// and all cross-client state (participant selection, dropout draws,
  /// aggregation, energy accounting) stays on the round loop's thread in a
  /// fixed order.  See DESIGN.md "Runtime & parallelism".
  std::size_t threads = 0;
};

struct FlRoundStats {
  std::int64_t round = 0;
  double global_loss = 0.0;
  double global_accuracy = 0.0;
  Joules energy{0.0};           ///< summed over participants, incl. MBO
  std::size_t participants = 0;
  std::size_t accepted = 0;     ///< updates that met the deadline
  Seconds deadline{0.0};        ///< what the server assigned this round
  std::size_t backfilled = 0;   ///< dropouts replaced by fresh draws
  std::size_t timed_out = 0;    ///< reports past the straggler cutoff
  /// Server wall time for the round: the last report's arrival, bounded by
  /// the straggler cutoff when one is configured.
  Seconds round_wall{0.0};
};

struct FlSimulationResult {
  std::vector<FlRoundStats> rounds;

  [[nodiscard]] Joules total_energy() const;
  [[nodiscard]] double final_accuracy() const;
  [[nodiscard]] std::size_t total_dropped_updates() const;
};

class FederatedSimulation {
 public:
  /// Homogeneous fleet: every client runs on `model` (must outlive the
  /// simulation).
  FederatedSimulation(const device::DeviceModel& model,
                      FlSimulationConfig config);

  /// Heterogeneous fleet: client c runs on devices[c % devices.size()].
  /// The server's per-round deadline floor is the *slowest* selected
  /// participant's T_min — the paper's cohort-aware deadline design.
  /// All device models must outlive the simulation.
  FederatedSimulation(
      std::vector<const device::DeviceModel*> devices,
      FlSimulationConfig config);

  /// Run all configured rounds.
  [[nodiscard]] FlSimulationResult run();

 private:
  [[nodiscard]] std::unique_ptr<core::PaceController> make_controller(
      const device::DeviceModel& model, std::uint64_t seed,
      Seconds round_t_min) const;

  /// Fold one finished round into the global telemetry registry / event
  /// stream (no-op when telemetry is off; never perturbs the simulation).
  void record_round_telemetry(const FlRoundStats& stats, std::size_t dropouts,
                              const std::vector<LocalUpdate>& updates) const;

  std::vector<const device::DeviceModel*> devices_;
  FlSimulationConfig config_;
  /// Fleet-wide exploitation-ILP memo (share_schedule_cache); thread-safe,
  /// handed to every BoFL controller as a non-owning pointer.
  std::unique_ptr<ilp::ScheduleCache> schedule_cache_;
};

}  // namespace bofl::fl
