#include "fl/simulation.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "fleet/event_queue.hpp"
#include "core/bofl_controller.hpp"
#include "core/linear_controller.hpp"
#include "core/oracle_controller.hpp"
#include "core/performant_controller.hpp"
#include "faults/fault_injector.hpp"
#include "priors/knowledge_store.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/run_recorder.hpp"

namespace bofl::fl {

const char* to_string(DeadlinePolicyKind kind) {
  switch (kind) {
    case DeadlinePolicyKind::kUniformSlack:
      return "uniform-slack";
    case DeadlinePolicyKind::kStaticTimeout:
      return "static-timeout";
    case DeadlinePolicyKind::kAdaptiveSlack:
      return "adaptive-slack";
  }
  return "unknown";
}

const char* to_string(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kBofl:
      return "BoFL";
    case ControllerKind::kPerformant:
      return "Performant";
    case ControllerKind::kOracle:
      return "Oracle";
    case ControllerKind::kLinear:
      return "LinearModel";
  }
  return "unknown";
}

Joules FlSimulationResult::total_energy() const {
  Joules total{0.0};
  for (const FlRoundStats& r : rounds) {
    total += r.energy;
  }
  return total;
}

double FlSimulationResult::final_accuracy() const {
  return rounds.empty() ? 0.0 : rounds.back().global_accuracy;
}

std::size_t FlSimulationResult::total_dropped_updates() const {
  std::size_t dropped = 0;
  for (const FlRoundStats& r : rounds) {
    dropped += r.participants - r.accepted;
  }
  return dropped;
}

FederatedSimulation::FederatedSimulation(const device::DeviceModel& model,
                                         FlSimulationConfig config)
    : FederatedSimulation(std::vector<const device::DeviceModel*>{&model},
                          std::move(config)) {}

FederatedSimulation::FederatedSimulation(
    std::vector<const device::DeviceModel*> devices, FlSimulationConfig config)
    : devices_(std::move(devices)), config_(std::move(config)) {
  BOFL_REQUIRE(!devices_.empty(), "need at least one device model");
  for (const device::DeviceModel* model : devices_) {
    BOFL_REQUIRE(model != nullptr, "device models must be non-null");
  }
  BOFL_REQUIRE(config_.clients_per_round >= 1 &&
                   config_.clients_per_round <= config_.num_clients,
               "participants per round must be in [1, num_clients]");
  BOFL_REQUIRE(config_.rounds >= 1, "need at least one round");
  if (config_.share_schedule_cache &&
      config_.controller == ControllerKind::kBofl) {
    schedule_cache_ = std::make_unique<ilp::ScheduleCache>();
  }
}

std::unique_ptr<core::PaceController> FederatedSimulation::make_controller(
    const device::DeviceModel& model, std::uint64_t seed,
    Seconds round_t_min) const {
  const device::NoiseModel noise;
  switch (config_.controller) {
    case ControllerKind::kBofl: {
      core::BoflOptions options = config_.bofl_options;
      options.mbo_cost = core::mbo_cost_for_device(model.name());
      if (config_.auto_scale_tau) {
        // Keep the reference measurement duration meaningfully smaller than
        // a round so small fleet shards can still explore.
        options.tau = Seconds{std::min(options.tau.value(),
                                       round_t_min.value() / 8.0)};
      }
      auto controller = std::make_unique<core::BoflController>(
          model, config_.profile, noise, options, seed);
      // Fleet-shared exploitation memo (bit-identical; see config docs).
      controller->set_schedule_cache(schedule_cache_.get());
      if (config_.knowledge != nullptr) {
        // Knowledge-plane admission: seed this client from its cluster's
        // shared prior (may downgrade or decline — see KnowledgeStore).
        const priors::KnowledgeStore::Admission admission =
            config_.knowledge->admit(
                priors::ClusterKey::of(model, config_.profile),
                config_.prior_policy);
        if (admission.snapshot != nullptr) {
          controller->apply_prior(
              admission.snapshot->make_seed(
                  config_.knowledge->options().max_verify_ids),
              admission.policy);
        }
      }
      return controller;
    }
    case ControllerKind::kPerformant:
      return std::make_unique<core::PerformantController>(
          model, config_.profile, noise, seed);
    case ControllerKind::kOracle:
      return std::make_unique<core::OracleController>(model, config_.profile,
                                                      noise, seed);
    case ControllerKind::kLinear:
      return std::make_unique<core::LinearModelController>(
          model, config_.profile, noise, seed);
  }
  BOFL_ASSERT(false, "unreachable controller kind");
}

FlSimulationResult FederatedSimulation::run() {
  BOFL_REQUIRE(config_.dropout_probability >= 0.0 &&
                   config_.dropout_probability < 1.0,
               "dropout probability must be in [0, 1)");
  BOFL_REQUIRE(config_.straggler_timeout == 0.0 ||
                   config_.straggler_timeout >= 1.0,
               "straggler timeout is a deadline multiple (>= 1), or 0 = off");
  Rng rng(config_.seed);
  Rng dropout_rng(config_.seed ^ 0xD0D0ULL);

  // Build the client pool: per-client non-IID shards, shared architecture.
  const auto factory = [&]() {
    Rng model_rng(config_.seed ^ 0xA11CE5ULL);  // identical init everywhere
    if (config_.model == FleetModel::kLstm) {
      return nn::make_lstm_classifier(config_.feature_dim, config_.hidden,
                                      config_.classes, model_rng);
    }
    return nn::make_mlp_classifier(config_.feature_dim, config_.hidden,
                                   config_.depth, config_.classes, model_rng);
  };
  const auto make_shard = [&](std::uint64_t seed, double skew) {
    if (config_.model == FleetModel::kLstm) {
      return nn::make_sequences(config_.shard_examples, config_.sequence_length,
                                config_.feature_dim, config_.classes, seed);
    }
    return nn::make_classification(config_.shard_examples, config_.feature_dim,
                                   config_.classes, seed, /*noise=*/0.8, skew);
  };

  const std::int64_t minibatches_per_client =
      static_cast<std::int64_t>(config_.shard_examples) /
      config_.minibatch_size;
  const std::int64_t jobs_per_round =
      minibatches_per_client * config_.epochs;

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<Seconds> client_t_min;
  clients.reserve(config_.num_clients);
  client_t_min.reserve(config_.num_clients);
  for (std::size_t c = 0; c < config_.num_clients; ++c) {
    const device::DeviceModel& model = *devices_[c % devices_.size()];
    const Seconds t_min_c =
        model.round_t_min(config_.profile, jobs_per_round);
    client_t_min.push_back(t_min_c);
    clients.push_back(std::make_unique<Client>(
        c, make_shard(config_.seed * 7919 + c, config_.shard_skew), factory,
        config_.learning_rate, config_.minibatch_size,
        make_controller(model, config_.seed * 104729 + c, t_min_c)));
  }
  // Deadline floor when every client could be selected (used by the static
  // timeout policy, which cannot react per cohort).
  const Seconds t_min = fleet_deadline_floor(client_t_min);

  // Fault injection: one injector per run, one device channel per client
  // (owned here, consulted from that client's task only — see
  // faults::DeviceFaultChannel for the determinism contract).
  std::optional<faults::FaultInjector> injector;
  std::vector<std::unique_ptr<faults::DeviceFaultChannel>> channels;
  if (config_.fault_plan.has_value()) {
    injector.emplace(*config_.fault_plan, config_.seed);
    channels.reserve(config_.num_clients);
    for (std::size_t c = 0; c < config_.num_clients; ++c) {
      channels.push_back(
          injector->make_device_channel(static_cast<std::int64_t>(c)));
      clients[c]->install_fault_model(channels.back().get());
    }
    if (telemetry::RunRecorder* rec = telemetry::global_recorder()) {
      telemetry::JsonValue fields = telemetry::JsonValue::object();
      fields.set("name", injector->plan().name)
          .set("faults", injector->plan().faults.size())
          .set("plan_seed", injector->plan().seed);
      rec->emit("fault_plan", std::move(fields));
    }
  }

  // Held-out IID test set for global evaluation.
  const nn::Dataset test =
      make_shard(config_.seed ^ 0x7E57ULL, /*skew=*/0.0);
  nn::Sequential eval_model = factory();

  FedAvgServer server(eval_model.get_flat_parameters());

  // Server deadline policy (fl/deadline_policy.hpp).
  std::unique_ptr<DeadlinePolicy> policy;
  switch (config_.deadline_policy) {
    case DeadlinePolicyKind::kUniformSlack:
      policy = std::make_unique<UniformSlackPolicy>(
          config_.deadline_ratio, config_.seed ^ 0xDEAD11ULL);
      break;
    case DeadlinePolicyKind::kStaticTimeout:
      policy = std::make_unique<StaticTimeoutPolicy>(
          t_min * config_.static_timeout_slack);
      break;
    case DeadlinePolicyKind::kAdaptiveSlack:
      policy = std::make_unique<AdaptiveSlackPolicy>(config_.adaptive_slack);
      break;
  }

  // Reporting-deadline plumbing: per-client uplink + bandwidth estimator.
  const double model_bits =
      static_cast<double>(eval_model.num_parameters()) * 32.0;
  const double nominal_upload_seconds =
      config_.reporting_deadline_mode
          ? model_bits / (config_.uplink_mbps * 1e6)
          : 0.0;
  std::vector<NetworkModel> uplinks;
  std::vector<ReportingDeadlineAdapter> adapters;
  if (config_.reporting_deadline_mode) {
    for (std::size_t c = 0; c < config_.num_clients; ++c) {
      uplinks.emplace_back(config_.uplink_mbps, config_.uplink_cv,
                           config_.seed * 31 + c);
      adapters.emplace_back(
          model_bits, BandwidthEstimator(config_.uplink_mbps),
          config_.upload_safety_factor);
    }
  }

  // Worker pool for the per-round client fan-out.  Clients are independent
  // within a round (own shard, model replica, controller, uplink, adapter),
  // so each one is a task; everything cross-client stays on this thread.
  runtime::ThreadPool pool(config_.threads);

  FlSimulationResult result;
  result.rounds.reserve(static_cast<std::size_t>(config_.rounds));
  for (std::int64_t round = 0; round < config_.rounds; ++round) {
    const std::vector<std::size_t> participants = server.select_participants(
        config_.num_clients, config_.clients_per_round, rng);
    // The deadline must be feasible for the slowest selected participant;
    // in reporting mode it must also cover the upload.
    const Seconds cohort_floor = cohort_deadline_floor(
        client_t_min, participants,
        Seconds{config_.upload_safety_factor * nominal_upload_seconds});
    Seconds server_deadline = policy->assign(round, cohort_floor);
    if (injector) {
      // Deadline jitter: the server's announcement reaches clients skewed.
      // Applied after the policy so the jitter can push below the cohort
      // floor — that is the fault being modeled.
      const double jitter = injector->deadline_jitter(round);
      if (jitter != 1.0) {
        server_deadline = server_deadline * jitter;
        faults::emit_fault_event({faults::FaultKind::kDeadlineJitter, round,
                                  /*client=*/-1, /*time_s=*/0.0, jitter});
      }
    }

    FlRoundStats stats;
    stats.round = round;
    stats.participants = participants.size();
    stats.deadline = server_deadline;

    // Serial pre-pass: every shared-RNG draw happens here, in participant
    // order, so the dropout stream is independent of the worker count.
    // (Fault-plan dropouts are pure hash draws — order-free by design —
    // but their events are emitted here, serially, for the same reason.)
    std::vector<std::size_t> active;
    std::size_t dropped = 0;
    active.reserve(participants.size());
    for (std::size_t id : participants) {
      if (dropout_rng.bernoulli(config_.dropout_probability)) {
        ++dropped;  // the device vanished before training started
        continue;
      }
      if (injector &&
          injector->client_drops(round, static_cast<std::int64_t>(id))) {
        faults::emit_fault_event({faults::FaultKind::kClientDropout, round,
                                  static_cast<std::int64_t>(id),
                                  /*time_s=*/0.0, /*magnitude=*/1.0});
        ++dropped;
        continue;
      }
      active.push_back(id);
    }
    if (config_.backfill_dropouts && active.size() < participants.size()) {
      // Cohort backfill: draw replacements from the unselected pool so the
      // round keeps its planned parallelism.  Serial draws on the round
      // loop's RNG; replacements are still subject to fault-plan dropouts
      // (the outage does not spare them) but not to the baseline dropout
      // roll, which already ran for this round.
      std::vector<bool> considered(config_.num_clients, false);
      for (std::size_t id : participants) {
        considered[id] = true;
      }
      std::size_t attempts = 4 * config_.num_clients;
      while (active.size() < participants.size() && attempts-- > 0) {
        const std::size_t candidate =
            dropout_rng.uniform_index(config_.num_clients);
        if (considered[candidate]) {
          continue;
        }
        considered[candidate] = true;
        if (injector && injector->client_drops(
                            round, static_cast<std::int64_t>(candidate))) {
          continue;
        }
        active.push_back(candidate);
        ++stats.backfilled;
      }
    }

    // Parallel fan-out: local training (plus the simulated upload, whose
    // RNG is per-client) runs concurrently, one task per active client.
    // Results land in participant-order slots, keeping every downstream
    // reduction bit-identical to the serial loop.
    std::vector<LocalUpdate> updates(active.size());
    runtime::parallel_for_each(&pool, active.size(), [&](std::size_t k) {
      const std::size_t id = active[k];
      core::RoundSpec spec{round, jobs_per_round, server_deadline};
      if (config_.reporting_deadline_mode) {
        // The client infers its training deadline from the reporting one.
        spec.deadline = adapters[id].training_deadline(server_deadline);
      }
      LocalUpdate update = clients[id]->train_round(server.parameters(),
                                                    config_.epochs, spec);
      if (config_.reporting_deadline_mode) {
        update.upload_duration = uplinks[id].transfer_time(model_bits);
        adapters[id].record_upload(update.upload_duration);
      }
      // Straggler fault: the finished report lingers (flaky connectivity,
      // app backgrounded) for (factor - 1) deadlines.  Pure hash draw, so
      // querying it here in a worker is thread- and order-safe; the event
      // is emitted later, serially, from the same draw.
      const double straggle =
          injector ? injector->straggler_factor(
                         round, static_cast<std::int64_t>(id))
                   : 1.0;
      if (straggle > 1.0) {
        update.upload_duration +=
            Seconds{(straggle - 1.0) * server_deadline.value()};
      }
      if (config_.reporting_deadline_mode || straggle > 1.0) {
        update.reported_in_time =
            update.pace_trace.elapsed() + update.upload_duration <=
            server_deadline;
      }
      updates[k] = std::move(update);
    });

    // Barrier: aggregation and round accounting are serial again.  Device
    // fault events queued inside the parallel section drain here, in
    // participant order, so the telemetry stream stays byte-identical for
    // every worker count.
    if (injector) {
      for (std::size_t k = 0; k < active.size(); ++k) {
        const auto id = static_cast<std::int64_t>(active[k]);
        const double straggle = injector->straggler_factor(round, id);
        if (straggle > 1.0) {
          faults::emit_fault_event(
              {faults::FaultKind::kStraggler, round, id,
               updates[k].pace_trace.elapsed().value(), straggle});
        }
        for (const faults::FaultEvent& event :
             channels[active[k]]->drain_events(round)) {
          faults::emit_fault_event(event);
        }
      }
    }
    bool all_met = true;
    // Round close is event-driven: arrivals drain from a completion queue in
    // (time, participant) order, and the drain stops counting at the
    // straggler cutoff — same accounting as the polling loop this replaced
    // (max + counts are order-independent), bit for bit.
    const std::optional<double> straggler_cutoff =
        config_.straggler_timeout > 0.0
            ? std::optional<double>(config_.straggler_timeout *
                                    server_deadline.value())
            : std::nullopt;
    fleet::CompletionQueue<double> arrivals;
    for (std::size_t k = 0; k < updates.size(); ++k) {
      const LocalUpdate& update = updates[k];
      all_met = all_met && update.pace_trace.deadline_met() &&
                update.reported_in_time;
      stats.energy += update.pace_trace.energy() + update.pace_trace.mbo_energy;
      arrivals.push({update.pace_trace.elapsed().value() +
                         update.upload_duration.value(),
                     static_cast<std::uint64_t>(k)});
    }
    const fleet::RoundClose<double> close =
        fleet::close_round(arrivals, straggler_cutoff);
    stats.timed_out += close.timed_out;
    stats.round_wall = Seconds{close.wall};
    policy->record_outcome(all_met);
    stats.accepted = server.aggregate(updates);

    eval_model.set_flat_parameters(server.parameters());
    const Evaluation eval =
        evaluate(eval_model, test, config_.minibatch_size);
    stats.global_loss = eval.loss;
    stats.global_accuracy = eval.accuracy;
    record_round_telemetry(stats, dropped, updates);
    result.rounds.push_back(stats);
  }

  // Knowledge-plane publish-back, serial and in client-id order so the
  // store's merged content is independent of the worker count.  kCold keeps
  // an attached store read-only (the bit-identity contract).
  if (config_.knowledge != nullptr &&
      config_.prior_policy != priors::PriorPolicy::kCold &&
      config_.controller == ControllerKind::kBofl) {
    for (std::size_t c = 0; c < config_.num_clients; ++c) {
      const auto* bofl =
          dynamic_cast<const core::BoflController*>(&clients[c]->controller());
      if (bofl == nullptr) {
        continue;
      }
      const priors::ClusterKey key =
          priors::ClusterKey::of(*devices_[c % devices_.size()],
                                 config_.profile);
      switch (bofl->prior_state()) {
        case core::BoflController::PriorState::kVerified:
        case core::BoflController::PriorState::kAdopted:
          config_.knowledge->record_outcome(key, true);
          break;
        case core::BoflController::PriorState::kDemoted:
          config_.knowledge->record_outcome(key, false);
          break;
        case core::BoflController::PriorState::kNone:
        case core::BoflController::PriorState::kVerifying:
          break;
      }
      if (bofl->phase() == core::Phase::kExploitation) {
        config_.knowledge->contribute(key,
                                      priors::distill(*bofl, config_.rounds));
      }
    }
  }
  return result;
}

void FederatedSimulation::record_round_telemetry(
    const FlRoundStats& stats, std::size_t dropouts,
    const std::vector<LocalUpdate>& updates) const {
  // Serial (round-loop thread) and purely observational: every value comes
  // from the already-computed round stats and SimClock-based traces, so a
  // telemetry-enabled run is bit-identical to a disabled one.
  telemetry::Registry* reg = telemetry::global_registry();
  if (reg == nullptr) {
    return;
  }
  reg->counter("fl.rounds").add(1);
  reg->counter("fl.dropouts").add(dropouts);
  reg->counter("fl.deadline_misses").add(stats.participants - stats.accepted);
  reg->histogram("fl.round_energy_j").observe(stats.energy.value());
  Seconds min_slack{0.0};
  Seconds upload_total{0.0};
  bool first = true;
  for (const LocalUpdate& update : updates) {
    const Seconds slack = update.pace_trace.slack();
    min_slack = first ? slack : std::min(min_slack, slack);
    first = false;
    // min_slack_s in the event below stays signed (negative = miss flag);
    // the histogram takes the clamped value so misses don't read as
    // headroom in percentile summaries.
    reg->histogram("fl.round_slack_s")
        .observe(update.pace_trace.safe_slack().value());
    // Phase occupancy across the fleet (paper Table 3's per-phase view).
    const char* phase_counter = "fl.client_rounds_phase3";
    if (update.pace_trace.phase == core::Phase::kSafeRandomExploration) {
      phase_counter = "fl.client_rounds_phase1";
    } else if (update.pace_trace.phase == core::Phase::kParetoConstruction) {
      phase_counter = "fl.client_rounds_phase2";
    }
    reg->counter(phase_counter).add(1);
    if (config_.reporting_deadline_mode) {
      reg->histogram("fl.upload_seconds")
          .observe(update.upload_duration.value());
      upload_total += update.upload_duration;
    }
  }
  if (telemetry::RunRecorder* rec = telemetry::global_recorder()) {
    telemetry::JsonValue fields = telemetry::JsonValue::object();
    fields.set("round", stats.round)
        .set("deadline_s", stats.deadline.value())
        .set("energy_j", stats.energy.value())
        .set("participants", stats.participants)
        .set("accepted", stats.accepted)
        .set("dropouts", dropouts)
        .set("min_slack_s", updates.empty() ? telemetry::JsonValue()
                                            : min_slack.value())
        .set("loss", stats.global_loss)
        .set("accuracy", stats.global_accuracy);
    if (stats.backfilled > 0) {
      fields.set("backfilled", stats.backfilled);
    }
    if (stats.timed_out > 0) {
      fields.set("timed_out", stats.timed_out);
    }
    if (config_.straggler_timeout > 0.0) {
      fields.set("wall_s", stats.round_wall.value());
    }
    if (config_.reporting_deadline_mode && !updates.empty()) {
      fields.set("mean_upload_s",
                 upload_total.value() / static_cast<double>(updates.size()));
    }
    rec->emit("fl_round", std::move(fields));
  }
}

}  // namespace bofl::fl
