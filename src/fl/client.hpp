// A federated-learning client: local data shard, local model replica, SGD
// training loop, and a pace controller deciding the DVFS configuration of
// every training job (the paper's Figure 8 "FL task executor" + BoFL).
//
// Learning and pacing are deliberately decoupled: gradients come from the
// nn substrate, time/energy from the device substrate via the controller.
// One local minibatch step == one "job" in the controller's accounting.
#pragma once

#include <functional>
#include <memory>

#include "core/pace_controller.hpp"
#include "nn/data.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/sgd.hpp"

namespace bofl::fl {

/// What a client reports back to the server after a round.
struct LocalUpdate {
  std::size_t client_id = 0;
  std::vector<float> parameters;   ///< locally trained weights
  std::int64_t num_examples = 0;   ///< FedAvg weight
  double mean_loss = 0.0;          ///< mean training loss over the round
  core::RoundTrace pace_trace;     ///< energy/latency record of the round
  /// Reporting-deadline mode (fl/network.hpp): time the model upload took
  /// and whether the update reached the server before its reporting
  /// deadline.  Defaults describe the plain training-deadline mode.
  Seconds upload_duration{0.0};
  bool reported_in_time = true;
};

/// Builds a fresh (identically shaped) model replica.
using ModelFactory = std::function<nn::Sequential()>;

class Client {
 public:
  Client(std::size_t id, nn::Dataset shard, ModelFactory factory,
         double learning_rate, std::int64_t minibatch_size,
         std::unique_ptr<core::PaceController> controller);

  /// One FL round: load the global weights, run `epochs` epochs of
  /// minibatch SGD on the local shard, and account the round through the
  /// pace controller.
  [[nodiscard]] LocalUpdate train_round(const std::vector<float>& global,
                                        std::int64_t epochs,
                                        const core::RoundSpec& round);

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] std::int64_t num_minibatches() const;
  [[nodiscard]] const core::PaceController& controller() const {
    return *controller_;
  }

  /// Forward a device fault model to the pace controller (src/faults).
  /// Non-owning; `faults` must outlive the client.
  void install_fault_model(device::JobFaultModel* faults) {
    controller_->install_fault_model(faults);
  }

 private:
  std::size_t id_;
  nn::Dataset shard_;
  nn::Sequential model_;
  nn::SgdOptimizer optimizer_;
  std::int64_t minibatch_size_;
  std::unique_ptr<core::PaceController> controller_;
};

/// Mean loss and accuracy of `model` on `data`, evaluated in minibatches.
struct Evaluation {
  double loss = 0.0;
  double accuracy = 0.0;
};
[[nodiscard]] Evaluation evaluate(nn::Sequential& model,
                                  const nn::Dataset& data,
                                  std::int64_t minibatch_size);

}  // namespace bofl::fl
