#include "fl/deadline_policy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bofl::fl {

Seconds cohort_deadline_floor(const std::vector<Seconds>& client_t_min,
                              const std::vector<std::size_t>& participants,
                              Seconds per_round_overhead) {
  BOFL_REQUIRE(!participants.empty(), "cohort must have participants");
  BOFL_REQUIRE(per_round_overhead.value() >= 0.0,
               "per-round overhead cannot be negative");
  Seconds slowest{0.0};
  for (const std::size_t id : participants) {
    BOFL_REQUIRE(id < client_t_min.size(), "participant id out of range");
    BOFL_REQUIRE(client_t_min[id].value() > 0.0,
                 "client T_min must be positive");
    slowest = std::max(slowest, client_t_min[id]);
  }
  return slowest + per_round_overhead;
}

Seconds fleet_deadline_floor(const std::vector<Seconds>& client_t_min) {
  std::vector<std::size_t> everyone(client_t_min.size());
  for (std::size_t i = 0; i < everyone.size(); ++i) {
    everyone[i] = i;
  }
  return cohort_deadline_floor(client_t_min, everyone);
}

StaticTimeoutPolicy::StaticTimeoutPolicy(Seconds timeout) : timeout_(timeout) {
  BOFL_REQUIRE(timeout.value() > 0.0, "timeout must be positive");
}

Seconds StaticTimeoutPolicy::assign(std::int64_t round,
                                    Seconds cohort_t_min) {
  (void)round;
  (void)cohort_t_min;
  return timeout_;
}

UniformSlackPolicy::UniformSlackPolicy(double max_over_min_ratio,
                                       std::uint64_t seed)
    : ratio_(max_over_min_ratio), rng_(seed) {
  BOFL_REQUIRE(max_over_min_ratio >= 1.0, "slack ratio must be >= 1");
}

Seconds UniformSlackPolicy::assign(std::int64_t round, Seconds cohort_t_min) {
  (void)round;
  BOFL_REQUIRE(cohort_t_min.value() > 0.0, "cohort T_min must be positive");
  return Seconds{
      rng_.uniform(cohort_t_min.value(), cohort_t_min.value() * ratio_)};
}

AdaptiveSlackPolicy::AdaptiveSlackPolicy() : AdaptiveSlackPolicy(Config{}) {}

AdaptiveSlackPolicy::AdaptiveSlackPolicy(Config config)
    : config_(config), slack_(config.initial_slack) {
  BOFL_REQUIRE(config.min_slack >= 1.0, "min slack must be >= 1");
  BOFL_REQUIRE(config.min_slack <= config.initial_slack &&
                   config.initial_slack <= config.max_slack,
               "need min_slack <= initial_slack <= max_slack");
  BOFL_REQUIRE(config.tighten > 0.0 && config.tighten < 1.0,
               "tighten must be in (0, 1)");
  BOFL_REQUIRE(config.backoff > 1.0, "backoff must be > 1");
}

Seconds AdaptiveSlackPolicy::assign(std::int64_t round, Seconds cohort_t_min) {
  (void)round;
  BOFL_REQUIRE(cohort_t_min.value() > 0.0, "cohort T_min must be positive");
  return Seconds{slack_ * cohort_t_min.value()};
}

void AdaptiveSlackPolicy::record_outcome(bool all_met) {
  slack_ = all_met ? slack_ * config_.tighten : slack_ * config_.backoff;
  slack_ = std::clamp(slack_, config_.min_slack, config_.max_slack);
}

}  // namespace bofl::fl
