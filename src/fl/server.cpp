#include "fl/server.hpp"

#include "common/error.hpp"

namespace bofl::fl {

FedAvgServer::FedAvgServer(std::vector<float> initial_parameters)
    : parameters_(std::move(initial_parameters)) {
  BOFL_REQUIRE(!parameters_.empty(), "server needs a non-empty model");
}

std::vector<std::size_t> FedAvgServer::select_participants(
    std::size_t pool_size, std::size_t count, Rng& rng) const {
  BOFL_REQUIRE(count > 0 && count <= pool_size,
               "participant count must be in [1, pool size]");
  return rng.sample_without_replacement(pool_size, count);
}

std::size_t FedAvgServer::aggregate(const std::vector<LocalUpdate>& updates) {
  std::vector<double> accumulator(parameters_.size(), 0.0);
  double total_weight = 0.0;
  std::size_t accepted = 0;
  for (const LocalUpdate& update : updates) {
    if (!update.pace_trace.deadline_met() || !update.reported_in_time) {
      continue;  // straggler: the server has already moved on
    }
    BOFL_REQUIRE(update.parameters.size() == parameters_.size(),
                 "update size does not match the global model");
    const auto weight = static_cast<double>(update.num_examples);
    for (std::size_t i = 0; i < accumulator.size(); ++i) {
      accumulator[i] += weight * static_cast<double>(update.parameters[i]);
    }
    total_weight += weight;
    ++accepted;
  }
  if (accepted == 0) {
    return 0;  // nothing landed in time; keep the current global model
  }
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    parameters_[i] = static_cast<float>(accumulator[i] / total_weight);
  }
  return accepted;
}

}  // namespace bofl::fl
