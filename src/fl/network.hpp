// Network substrate: simulated client uplink and the reporting-deadline
// adapter (paper §3.1, footnote 3).
//
// The FL literature uses two deadline styles: (1) a *training* deadline by
// which gradients must be computed — what BoFL consumes — and (2) a
// *reporting* deadline by which the server must have received the update,
// which additionally covers the model upload.  The paper notes BoFL "can
// be easily extended to work well with a network bandwidth measurement
// module that can infer its training deadlines from the reporting
// deadlines"; this module is that extension:
//
//   * NetworkModel — a simulated wireless uplink with a mean bandwidth and
//     lognormal per-transfer variation (think 4G LTE: the paper's §6.5
//     example assumes ~5 Mbps for a 51.2 Mb ResNet50 upload).
//   * BandwidthEstimator — an EWMA over observed transfer rates, the
//     "bandwidth measurement module".
//   * ReportingDeadlineAdapter — converts a reporting deadline into a safe
//     training deadline by subtracting the predicted upload time with a
//     configurable safety factor, and feeds completed transfers back into
//     the estimator.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace bofl::fl {

/// A simulated uplink: draws per-transfer throughput around a mean.
class NetworkModel {
 public:
  /// `mean_mbps` is the long-run average uplink throughput in megabits per
  /// second; `cv` the per-transfer coefficient of variation.
  NetworkModel(double mean_mbps, double cv, std::uint64_t seed);

  /// Time to upload `payload_bits` on a fresh throughput draw.
  [[nodiscard]] Seconds transfer_time(double payload_bits);

  /// The throughput used by the most recent transfer [Mbps].
  [[nodiscard]] double last_throughput_mbps() const {
    return last_throughput_mbps_;
  }

  [[nodiscard]] double mean_mbps() const { return mean_mbps_; }

 private:
  double mean_mbps_;
  double cv_;
  Rng rng_;
  double last_throughput_mbps_ = 0.0;
};

/// EWMA throughput estimator fed by observed (bits, seconds) transfers.
class BandwidthEstimator {
 public:
  /// `initial_mbps` seeds the estimate before any observation;
  /// `smoothing` in (0, 1] is the EWMA weight of a new sample.
  BandwidthEstimator(double initial_mbps, double smoothing = 0.3);

  void record_transfer(double payload_bits, Seconds duration);

  [[nodiscard]] double estimate_mbps() const { return estimate_mbps_; }
  [[nodiscard]] std::size_t num_samples() const { return samples_; }

 private:
  double estimate_mbps_;
  double smoothing_;
  std::size_t samples_ = 0;
};

/// Derives training deadlines from reporting deadlines.
class ReportingDeadlineAdapter {
 public:
  /// `model_bits` is the update payload (e.g. ResNet50 ~ 51.2e6 bits);
  /// `safety_factor` inflates the predicted upload time (>= 1) to absorb
  /// bandwidth dips.
  ReportingDeadlineAdapter(double model_bits, BandwidthEstimator estimator,
                           double safety_factor = 1.25);

  /// Training deadline = reporting deadline - safety * predicted upload.
  /// Never returns a negative duration (clamped at zero: an impossible
  /// round the controller will treat as guardian-infeasible).
  [[nodiscard]] Seconds training_deadline(Seconds reporting_deadline) const;

  /// Predicted upload time at the current bandwidth estimate.
  [[nodiscard]] Seconds predicted_upload() const;

  /// Feed back a completed upload so the estimate tracks the link.
  void record_upload(Seconds duration);

  [[nodiscard]] const BandwidthEstimator& estimator() const {
    return estimator_;
  }

 private:
  double model_bits_;
  BandwidthEstimator estimator_;
  double safety_factor_;
};

}  // namespace bofl::fl
