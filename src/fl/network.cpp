#include "fl/network.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bofl::fl {

NetworkModel::NetworkModel(double mean_mbps, double cv, std::uint64_t seed)
    : mean_mbps_(mean_mbps), cv_(cv), rng_(seed) {
  BOFL_REQUIRE(mean_mbps > 0.0, "mean bandwidth must be positive");
  BOFL_REQUIRE(cv >= 0.0, "bandwidth CV must be non-negative");
}

Seconds NetworkModel::transfer_time(double payload_bits) {
  BOFL_REQUIRE(payload_bits > 0.0, "payload must be positive");
  last_throughput_mbps_ = mean_mbps_ * rng_.lognormal_mean1(cv_);
  return Seconds{payload_bits / (last_throughput_mbps_ * 1e6)};
}

BandwidthEstimator::BandwidthEstimator(double initial_mbps, double smoothing)
    : estimate_mbps_(initial_mbps), smoothing_(smoothing) {
  BOFL_REQUIRE(initial_mbps > 0.0, "initial bandwidth must be positive");
  BOFL_REQUIRE(smoothing > 0.0 && smoothing <= 1.0,
               "EWMA smoothing must be in (0, 1]");
}

void BandwidthEstimator::record_transfer(double payload_bits,
                                         Seconds duration) {
  BOFL_REQUIRE(payload_bits > 0.0 && duration.value() > 0.0,
               "transfers need positive size and duration");
  const double observed_mbps = payload_bits / (duration.value() * 1e6);
  estimate_mbps_ =
      (1.0 - smoothing_) * estimate_mbps_ + smoothing_ * observed_mbps;
  ++samples_;
}

ReportingDeadlineAdapter::ReportingDeadlineAdapter(
    double model_bits, BandwidthEstimator estimator, double safety_factor)
    : model_bits_(model_bits),
      estimator_(estimator),
      safety_factor_(safety_factor) {
  BOFL_REQUIRE(model_bits > 0.0, "model size must be positive");
  BOFL_REQUIRE(safety_factor >= 1.0, "safety factor must be >= 1");
}

Seconds ReportingDeadlineAdapter::predicted_upload() const {
  return Seconds{model_bits_ / (estimator_.estimate_mbps() * 1e6)};
}

Seconds ReportingDeadlineAdapter::training_deadline(
    Seconds reporting_deadline) const {
  const double training = reporting_deadline.value() -
                          safety_factor_ * predicted_upload().value();
  return Seconds{std::max(training, 0.0)};
}

void ReportingDeadlineAdapter::record_upload(Seconds duration) {
  estimator_.record_transfer(model_bits_, duration);
}

}  // namespace bofl::fl
