// Covariance kernels for Gaussian-process regression.
//
// The paper (§4.3) models the latency and energy objectives as independent
// GPs with zero prior mean and a Matérn-5/2 kernel.  We implement the
// Matérn-5/2 plus Matérn-3/2 and squared-exponential (RBF) variants with
// ARD (one lengthscale per input dimension) for ablations.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"

namespace bofl::runtime {
class ThreadPool;
}

namespace bofl::gp {

enum class KernelFamily {
  kMatern52,   ///< the paper's choice
  kMatern32,
  kRbf,
};

[[nodiscard]] const char* to_string(KernelFamily family);

/// Inverse of to_string; empty when `name` is not a known family.  Used by
/// the priors KnowledgeStore to round-trip fitted kernels through JSON.
[[nodiscard]] std::optional<KernelFamily> kernel_family_from_string(
    std::string_view name);

/// A stationary ARD kernel k(x, x') = signal_variance * c(r) where r is the
/// lengthscale-weighted Euclidean distance.
class Kernel {
 public:
  Kernel(KernelFamily family, double signal_variance,
         std::vector<double> lengthscales);

  [[nodiscard]] KernelFamily family() const { return family_; }
  [[nodiscard]] double signal_variance() const { return signal_variance_; }
  [[nodiscard]] const std::vector<double>& lengthscales() const {
    return lengthscales_;
  }
  [[nodiscard]] std::size_t input_dimension() const {
    return lengthscales_.size();
  }

  /// Covariance between two points.
  [[nodiscard]] double operator()(const linalg::Vector& a,
                                  const linalg::Vector& b) const;

  /// Full covariance matrix of a point set (symmetric).  Large builds
  /// (n >= 48) fan their rows out over `pool` when one is given; every
  /// entry is written to its own slot, so the result is identical for any
  /// pool size (including nullptr = serial).
  [[nodiscard]] linalg::Matrix gram(const std::vector<linalg::Vector>& points,
                                    runtime::ThreadPool* pool = nullptr) const;

  /// Cross-covariance vector k(x, X) against a point set.
  [[nodiscard]] linalg::Vector cross(
      const linalg::Vector& x, const std::vector<linalg::Vector>& points) const;

 private:
  KernelFamily family_;
  double signal_variance_;
  std::vector<double> lengthscales_;
};

}  // namespace bofl::gp
