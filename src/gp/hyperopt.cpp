#include "gp/hyperopt.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/optim.hpp"

namespace bofl::gp {

namespace {

/// Parameter vector layout: [log ls_0 .. log ls_{d-1}, log sv, (log nv)].
struct ParamCodec {
  std::size_t dim;
  bool with_noise;
  const HyperoptOptions& opts;

  [[nodiscard]] std::size_t size() const { return dim + 1 + (with_noise ? 1 : 0); }

  [[nodiscard]] Kernel decode_kernel(KernelFamily family,
                                     const std::vector<double>& p) const {
    std::vector<double> lengthscales(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      lengthscales[i] = std::clamp(std::exp(p[i]), opts.min_lengthscale,
                                   opts.max_lengthscale);
    }
    const double sv = std::clamp(std::exp(p[dim]), opts.min_signal_variance,
                                 opts.max_signal_variance);
    return {family, sv, std::move(lengthscales)};
  }

  [[nodiscard]] double decode_noise(const std::vector<double>& p,
                                    double fallback) const {
    if (!with_noise) {
      return fallback;
    }
    return std::clamp(std::exp(p[dim + 1]), opts.min_noise_variance,
                      opts.max_noise_variance);
  }

  [[nodiscard]] std::vector<double> encode(const HyperoptResult& r) const {
    std::vector<double> p(size());
    for (std::size_t i = 0; i < dim; ++i) {
      p[i] = std::log(r.kernel.lengthscales()[i]);
    }
    p[dim] = std::log(r.kernel.signal_variance());
    if (with_noise) {
      p[dim + 1] = std::log(std::max(r.noise_variance, opts.min_noise_variance));
    }
    return p;
  }
};

}  // namespace

HyperoptResult fit_hyperparameters(KernelFamily family,
                                   const std::vector<linalg::Vector>& inputs,
                                   const std::vector<double>& targets,
                                   Rng& rng, const HyperoptOptions& options,
                                   const HyperoptResult* warm_start) {
  BOFL_REQUIRE(!inputs.empty(), "hyperparameter fitting needs data");
  BOFL_REQUIRE(inputs.size() == targets.size(),
               "inputs and targets must have equal length");
  const std::size_t dim = inputs.front().size();
  const ParamCodec codec{dim, options.optimize_noise, options};
  const double default_noise = 1e-4;

  auto negative_lml = [&](const std::vector<double>& p) -> double {
    GaussianProcess model(codec.decode_kernel(family, p),
                          codec.decode_noise(p, default_noise));
    model.condition(inputs, targets);
    return -model.log_marginal_likelihood();
  };

  if (warm_start != nullptr) {
    BOFL_REQUIRE(warm_start->kernel.family() == family &&
                     warm_start->kernel.lengthscales().size() == dim,
                 "warm start does not match the kernel family or dimension");
    NelderMeadOptions nm;
    nm.max_iterations = options.warm_start_max_iterations;
    nm.initial_step = options.warm_start_step;
    const NelderMeadResult run =
        nelder_mead(negative_lml, codec.encode(*warm_start), nm);
    return {codec.decode_kernel(family, run.x),
            codec.decode_noise(run.x, default_noise), -run.f};
  }

  NelderMeadOptions nm;
  nm.max_iterations = options.max_iterations_per_start;

  double best_value = std::numeric_limits<double>::infinity();
  std::vector<double> best_params;
  for (std::size_t restart = 0; restart < options.num_restarts; ++restart) {
    std::vector<double> start(codec.size());
    if (restart == 0) {
      // Canonical start: moderate lengthscales, unit signal, small noise.
      for (std::size_t i = 0; i < dim; ++i) {
        start[i] = std::log(0.4);
      }
      start[dim] = 0.0;
      if (options.optimize_noise) {
        start[dim + 1] = std::log(1e-3);
      }
    } else {
      for (std::size_t i = 0; i < dim; ++i) {
        start[i] = rng.uniform(std::log(options.min_lengthscale),
                               std::log(options.max_lengthscale));
      }
      start[dim] = rng.uniform(-1.5, 1.5);
      if (options.optimize_noise) {
        start[dim + 1] = rng.uniform(std::log(1e-6), std::log(1e-1));
      }
    }
    const NelderMeadResult run = nelder_mead(negative_lml, start, nm);
    if (run.f < best_value) {
      best_value = run.f;
      best_params = run.x;
    }
  }
  BOFL_ASSERT(!best_params.empty(), "hyperopt produced no candidate");

  HyperoptResult result{codec.decode_kernel(family, best_params),
                        codec.decode_noise(best_params, default_noise),
                        -best_value};
  return result;
}

bool warm_start_compatible(const HyperoptResult& fit, KernelFamily family,
                           std::size_t input_dimension) {
  if (fit.kernel.family() != family ||
      fit.kernel.input_dimension() != input_dimension) {
    return false;
  }
  if (!std::isfinite(fit.kernel.signal_variance()) ||
      fit.kernel.signal_variance() <= 0.0) {
    return false;
  }
  for (const double ls : fit.kernel.lengthscales()) {
    if (!std::isfinite(ls) || ls <= 0.0) {
      return false;
    }
  }
  return std::isfinite(fit.noise_variance) && fit.noise_variance >= 0.0 &&
         std::isfinite(fit.log_marginal_likelihood);
}

}  // namespace bofl::gp
