// Gaussian-process regression with exact (Cholesky-based) inference.
//
// Zero prior mean (the caller standardizes outputs; see bo::MboEngine),
// homoscedastic Gaussian observation noise.  Conditioning on a fresh data
// set is O(n^3) in the number of observations; appending one observation
// extends the existing factor in O(n^2) via a rank-1 Cholesky border
// (linalg::cholesky_append_row), which is what the Kriging-believer batch
// strategy hits twice per fantasy pick.  `set_full_refit(true)` restores
// the from-scratch refactorization as a reference/escape hatch.
#pragma once

#include <optional>
#include <vector>

#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace bofl::gp {

/// Posterior predictive distribution at one point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;  ///< latent-function variance (no observation noise)

  [[nodiscard]] double stddev() const;
};

class GaussianProcess {
 public:
  /// `noise_variance` is the observation-noise variance added to the kernel
  /// diagonal; must be non-negative (jitter keeps zero-noise GPs stable).
  GaussianProcess(Kernel kernel, double noise_variance);

  /// Condition the posterior on (inputs, targets).  Replaces any previous
  /// data.  Requires inputs.size() == targets.size() and matching dimension.
  void condition(std::vector<linalg::Vector> inputs,
                 std::vector<double> targets);

  /// Append one observation and re-condition (used for fantasy updates).
  /// Default: extends the Cholesky factor in O(n^2), falling back to a full
  /// refit when the bordered matrix is numerically indefinite (duplicate
  /// points with no noise).  With set_full_refit(true): always O(n^3).
  void add_observation(linalg::Vector input, double target);

  /// Force from-scratch refactorization on every add_observation — the
  /// reference path the incremental algebra is differentially tested
  /// against (bo::MboOptions::full_refit forwards here).
  void set_full_refit(bool on) { full_refit_ = on; }
  [[nodiscard]] bool full_refit() const { return full_refit_; }

  /// Gram builds during conditioning fan out over `pool` (non-owning;
  /// nullptr = serial, the default).  Results are pool-size-independent.
  void set_parallel_pool(runtime::ThreadPool* pool) { pool_ = pool; }

  [[nodiscard]] std::size_t num_observations() const { return inputs_.size(); }
  [[nodiscard]] const Kernel& kernel() const { return kernel_; }
  [[nodiscard]] double noise_variance() const { return noise_variance_; }
  /// Diagonal jitter the current factor absorbed (0 for healthy matrices).
  [[nodiscard]] double jitter() const { return jitter_; }
  [[nodiscard]] const std::vector<linalg::Vector>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<double>& targets() const { return targets_; }

  /// Posterior predictive at `x`.  With no observations this is the prior:
  /// mean 0, variance = signal variance.
  [[nodiscard]] Prediction predict(const linalg::Vector& x) const;

  /// Posterior predictive at a point whose cross-covariance vector against
  /// inputs() the caller already holds (k_star[i] = kernel()(x, inputs()[i])).
  /// Lets callers that cache cross-covariances (bo::MboEngine) skip the
  /// kernel evaluations predict() would redo.
  [[nodiscard]] Prediction predict_from_cross(
      const linalg::Vector& k_star) const;

  /// Batched posterior for `count` points: k_star_rows[indices[j]] is the
  /// cross-covariance row of point j, out[j] its prediction.  All variances
  /// come from one blocked multi-RHS triangular solve instead of `count`
  /// independent solves; results match predict_from_cross per point.
  void predict_block(const std::vector<linalg::Vector>& k_star_rows,
                     const std::size_t* indices, std::size_t count,
                     Prediction* out) const;

  /// Log marginal likelihood of the conditioned data under the current
  /// hyperparameters.  Requires at least one observation.
  [[nodiscard]] double log_marginal_likelihood() const;

 private:
  void refit();

  Kernel kernel_;
  double noise_variance_;
  bool full_refit_ = false;
  runtime::ThreadPool* pool_ = nullptr;
  std::vector<linalg::Vector> inputs_;
  std::vector<double> targets_;
  // Posterior cache: K + sigma^2 I (+ jitter I) = L L^T,
  // alpha = (K + sigma^2 I)^{-1} y, jitter_ = the jitter L absorbed.
  std::optional<linalg::Matrix> chol_;
  linalg::Vector alpha_;
  double jitter_ = 0.0;
};

}  // namespace bofl::gp
