// Gaussian-process regression with exact (Cholesky-based) inference.
//
// Zero prior mean (the caller standardizes outputs; see bo::MboEngine),
// homoscedastic Gaussian observation noise.  Conditioning is O(n^3) in the
// number of observations, which is ample for BoFL's tens of observations.
//
// `condition` refits the posterior for a new data set without touching the
// hyperparameters; this is exactly what the Kriging-believer batch strategy
// needs when it appends fantasy observations.
#pragma once

#include <optional>
#include <vector>

#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace bofl::gp {

/// Posterior predictive distribution at one point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;  ///< latent-function variance (no observation noise)

  [[nodiscard]] double stddev() const;
};

class GaussianProcess {
 public:
  /// `noise_variance` is the observation-noise variance added to the kernel
  /// diagonal; must be non-negative (jitter keeps zero-noise GPs stable).
  GaussianProcess(Kernel kernel, double noise_variance);

  /// Condition the posterior on (inputs, targets).  Replaces any previous
  /// data.  Requires inputs.size() == targets.size() and matching dimension.
  void condition(std::vector<linalg::Vector> inputs,
                 std::vector<double> targets);

  /// Append one observation and re-condition (used for fantasy updates).
  void add_observation(linalg::Vector input, double target);

  [[nodiscard]] std::size_t num_observations() const { return inputs_.size(); }
  [[nodiscard]] const Kernel& kernel() const { return kernel_; }
  [[nodiscard]] double noise_variance() const { return noise_variance_; }
  [[nodiscard]] const std::vector<linalg::Vector>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<double>& targets() const { return targets_; }

  /// Posterior predictive at `x`.  With no observations this is the prior:
  /// mean 0, variance = signal variance.
  [[nodiscard]] Prediction predict(const linalg::Vector& x) const;

  /// Log marginal likelihood of the conditioned data under the current
  /// hyperparameters.  Requires at least one observation.
  [[nodiscard]] double log_marginal_likelihood() const;

 private:
  void refit();

  Kernel kernel_;
  double noise_variance_;
  std::vector<linalg::Vector> inputs_;
  std::vector<double> targets_;
  // Posterior cache: K + sigma^2 I = L L^T, alpha = (K + sigma^2 I)^{-1} y.
  std::optional<linalg::Matrix> chol_;
  linalg::Vector alpha_;
};

}  // namespace bofl::gp
