#include "gp/gaussian_process.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bofl::gp {

double Prediction::stddev() const { return std::sqrt(std::max(variance, 0.0)); }

GaussianProcess::GaussianProcess(Kernel kernel, double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance) {
  BOFL_REQUIRE(noise_variance >= 0.0, "noise variance must be non-negative");
}

void GaussianProcess::condition(std::vector<linalg::Vector> inputs,
                                std::vector<double> targets) {
  BOFL_REQUIRE(inputs.size() == targets.size(),
               "inputs and targets must have equal length");
  for (const auto& x : inputs) {
    BOFL_REQUIRE(x.size() == kernel_.input_dimension(),
                 "input dimension mismatch");
  }
  inputs_ = std::move(inputs);
  targets_ = std::move(targets);
  refit();
}

void GaussianProcess::add_observation(linalg::Vector input, double target) {
  BOFL_REQUIRE(input.size() == kernel_.input_dimension(),
               "input dimension mismatch");
  inputs_.push_back(std::move(input));
  targets_.push_back(target);
  refit();
}

void GaussianProcess::refit() {
  if (inputs_.empty()) {
    chol_.reset();
    alpha_.clear();
    return;
  }
  linalg::Matrix k = kernel_.gram(inputs_);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    k(i, i) += noise_variance_;
  }
  auto factor = linalg::cholesky_with_jitter(k);
  chol_ = std::move(factor.l);
  alpha_ = linalg::solve_cholesky(*chol_, targets_);
}

Prediction GaussianProcess::predict(const linalg::Vector& x) const {
  BOFL_REQUIRE(x.size() == kernel_.input_dimension(),
               "input dimension mismatch");
  if (inputs_.empty()) {
    return {0.0, kernel_.signal_variance()};
  }
  const linalg::Vector k_star = kernel_.cross(x, inputs_);
  const double mean = linalg::dot(k_star, alpha_);
  // variance = k(x,x) - k*^T (K + s^2 I)^{-1} k* computed via v = L^{-1} k*.
  const linalg::Vector v = linalg::solve_lower(*chol_, k_star);
  const double variance = kernel_.signal_variance() - linalg::dot(v, v);
  return {mean, std::max(variance, 0.0)};
}

double GaussianProcess::log_marginal_likelihood() const {
  BOFL_REQUIRE(!inputs_.empty(), "log marginal likelihood needs data");
  const auto n = static_cast<double>(inputs_.size());
  const double data_fit = -0.5 * linalg::dot(targets_, alpha_);
  const double complexity = -0.5 * linalg::log_det_from_cholesky(*chol_);
  const double constant = -0.5 * n * std::log(2.0 * M_PI);
  return data_fit + complexity + constant;
}

}  // namespace bofl::gp
