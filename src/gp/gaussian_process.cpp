#include "gp/gaussian_process.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/simd/kernels.hpp"

namespace bofl::gp {

double Prediction::stddev() const { return std::sqrt(std::max(variance, 0.0)); }

GaussianProcess::GaussianProcess(Kernel kernel, double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance) {
  BOFL_REQUIRE(noise_variance >= 0.0, "noise variance must be non-negative");
}

void GaussianProcess::condition(std::vector<linalg::Vector> inputs,
                                std::vector<double> targets) {
  BOFL_REQUIRE(inputs.size() == targets.size(),
               "inputs and targets must have equal length");
  for (const auto& x : inputs) {
    BOFL_REQUIRE(x.size() == kernel_.input_dimension(),
                 "input dimension mismatch");
  }
  inputs_ = std::move(inputs);
  targets_ = std::move(targets);
  refit();
}

void GaussianProcess::add_observation(linalg::Vector input, double target) {
  BOFL_REQUIRE(input.size() == kernel_.input_dimension(),
               "input dimension mismatch");
  if (full_refit_ || !chol_.has_value() || inputs_.empty()) {
    inputs_.push_back(std::move(input));
    targets_.push_back(target);
    refit();
    return;
  }
  // Incremental path: border the factor with the new row in O(n^2).  The
  // existing factor absorbed `jitter_` on its whole diagonal, so the new
  // diagonal entry carries the same jitter to stay one coherent matrix.
  const linalg::Vector cross = kernel_.cross(input, inputs_);
  const double diag = kernel_.signal_variance() + noise_variance_ + jitter_;
  auto extended = linalg::cholesky_append_row(*chol_, cross, diag);
  inputs_.push_back(std::move(input));
  targets_.push_back(target);
  if (!extended.has_value()) {
    refit();  // indefinite border (e.g. duplicate noiseless point): re-jitter
    return;
  }
  chol_ = std::move(*extended);
  alpha_ = linalg::solve_cholesky(*chol_, targets_);
}

void GaussianProcess::refit() {
  if (inputs_.empty()) {
    chol_.reset();
    alpha_.clear();
    jitter_ = 0.0;
    return;
  }
  linalg::Matrix k = kernel_.gram(inputs_, pool_);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    k(i, i) += noise_variance_;
  }
  auto factor = linalg::cholesky_with_jitter(k);
  chol_ = std::move(factor.l);
  jitter_ = factor.jitter;
  alpha_ = linalg::solve_cholesky(*chol_, targets_);
}

Prediction GaussianProcess::predict(const linalg::Vector& x) const {
  BOFL_REQUIRE(x.size() == kernel_.input_dimension(),
               "input dimension mismatch");
  if (inputs_.empty()) {
    return {0.0, kernel_.signal_variance()};
  }
  return predict_from_cross(kernel_.cross(x, inputs_));
}

Prediction GaussianProcess::predict_from_cross(
    const linalg::Vector& k_star) const {
  if (inputs_.empty()) {
    return {0.0, kernel_.signal_variance()};
  }
  BOFL_REQUIRE(k_star.size() == inputs_.size(),
               "cross-covariance length mismatch");
  const double mean = linalg::dot(k_star, alpha_);
  // variance = k(x,x) - k*^T (K + s^2 I)^{-1} k* computed via v = L^{-1} k*.
  const linalg::Vector v = linalg::solve_lower(*chol_, k_star);
  const double variance = kernel_.signal_variance() - linalg::dot(v, v);
  return {mean, std::max(variance, 0.0)};
}

void GaussianProcess::predict_block(
    const std::vector<linalg::Vector>& k_star_rows, const std::size_t* indices,
    std::size_t count, Prediction* out) const {
  if (count == 0) {
    return;
  }
  if (inputs_.empty()) {
    for (std::size_t j = 0; j < count; ++j) {
      out[j] = {0.0, kernel_.signal_variance()};
    }
    return;
  }
  const std::size_t n = inputs_.size();
  // Gather the block's cross-covariance rows as the columns of one n x count
  // right-hand-side matrix, then run a single blocked forward substitution.
  linalg::Matrix b(n, count);
  for (std::size_t j = 0; j < count; ++j) {
    const linalg::Vector& row = k_star_rows[indices[j]];
    BOFL_REQUIRE(row.size() == n, "cross-covariance length mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      b(i, j) = row[i];
    }
  }
  const linalg::Matrix v = linalg::solve_lower_multi(*chol_, b);
  std::vector<double> explained(count, 0.0);
  linalg::simd::sumsq_rows_accumulate(v.row(0), n, count, explained.data());
  const double sv = kernel_.signal_variance();
  for (std::size_t j = 0; j < count; ++j) {
    const double mean = linalg::dot(k_star_rows[indices[j]], alpha_);
    out[j] = {mean, std::max(sv - explained[j], 0.0)};
  }
}

double GaussianProcess::log_marginal_likelihood() const {
  BOFL_REQUIRE(!inputs_.empty(), "log marginal likelihood needs data");
  const auto n = static_cast<double>(inputs_.size());
  const double data_fit = -0.5 * linalg::dot(targets_, alpha_);
  const double complexity = -0.5 * linalg::log_det_from_cholesky(*chol_);
  const double constant = -0.5 * n * std::log(2.0 * M_PI);
  return data_fit + complexity + constant;
}

}  // namespace bofl::gp
