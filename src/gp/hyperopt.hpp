// Kernel-hyperparameter fitting by maximizing the log marginal likelihood.
//
// Parameters are optimized in log space (lengthscales, signal variance,
// noise variance are all positive) with multi-start Nelder–Mead.  Bounds
// keep the optimizer out of degenerate corners (lengthscale 10^6, noise
// swallowing the signal), which matters with the ~10 observations BoFL has
// after phase 1.
#pragma once

#include "common/rng.hpp"
#include "gp/gaussian_process.hpp"

namespace bofl::gp {

struct HyperoptOptions {
  std::size_t num_restarts = 4;
  std::size_t max_iterations_per_start = 200;
  /// Warm-started refits (see `warm_start` below) run a single Nelder–Mead
  /// pass from the previous optimum with a small simplex instead of the
  /// multi-start search: the LML optimum moves slowly as observations
  /// accumulate, so a short local polish recovers it at a fraction of the
  /// evaluation budget.  ~60 iterations keeps the refit an order of
  /// magnitude cheaper than a full search at typical phase-2 data sizes.
  std::size_t warm_start_max_iterations = 60;
  double warm_start_step = 0.05;
  // log-space box bounds (applied by clamping inside the objective).
  double min_lengthscale = 0.02;
  double max_lengthscale = 10.0;
  double min_signal_variance = 1e-4;
  double max_signal_variance = 1e2;
  double min_noise_variance = 1e-8;
  double max_noise_variance = 1.0;
  bool optimize_noise = true;
};

struct HyperoptResult {
  Kernel kernel;
  double noise_variance = 0.0;
  double log_marginal_likelihood = 0.0;
};

/// Fit hyperparameters for `family` kernels on (inputs, targets) and return
/// the best kernel found.  Inputs are expected normalized to [0,1]^d and
/// targets standardized (mean 0, unit variance) — the bounds above assume
/// that scaling.
///
/// When `warm_start` is non-null, the multi-start search is replaced by one
/// short local polish seeded at the warm-start's hyperparameters (which must
/// match `family` and the input dimension).  The warm path draws nothing
/// from `rng`, so it is bitwise deterministic given the data and the start.
[[nodiscard]] HyperoptResult fit_hyperparameters(
    KernelFamily family, const std::vector<linalg::Vector>& inputs,
    const std::vector<double>& targets, Rng& rng,
    const HyperoptOptions& options = {},
    const HyperoptResult* warm_start = nullptr);

/// True when `fit` can seed a warm-started refit for `family` kernels on
/// `input_dimension`-dimensional inputs: same family, matching ARD width,
/// and finite positive hyperparameters.  The priors subsystem gates
/// cross-client hyperparameter reuse on this before touching an engine.
[[nodiscard]] bool warm_start_compatible(const HyperoptResult& fit,
                                         KernelFamily family,
                                         std::size_t input_dimension);

}  // namespace bofl::gp
