#include "gp/kernel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/simd/kernels.hpp"
#include "runtime/thread_pool.hpp"

namespace bofl::gp {

namespace {

/// KernelFamily and simd::Corr enumerate the same families in the same
/// order; the dispatched row kernel takes the latter.
inline linalg::simd::Corr to_corr(KernelFamily family) {
  return static_cast<linalg::simd::Corr>(static_cast<int>(family));
}

}  // namespace

const char* to_string(KernelFamily family) {
  switch (family) {
    case KernelFamily::kMatern52:
      return "matern52";
    case KernelFamily::kMatern32:
      return "matern32";
    case KernelFamily::kRbf:
      return "rbf";
  }
  return "unknown";
}

std::optional<KernelFamily> kernel_family_from_string(std::string_view name) {
  for (const KernelFamily family :
       {KernelFamily::kMatern52, KernelFamily::kMatern32, KernelFamily::kRbf}) {
    if (name == to_string(family)) {
      return family;
    }
  }
  return std::nullopt;
}

Kernel::Kernel(KernelFamily family, double signal_variance,
               std::vector<double> lengthscales)
    : family_(family),
      signal_variance_(signal_variance),
      lengthscales_(std::move(lengthscales)) {
  BOFL_REQUIRE(signal_variance_ > 0.0, "signal variance must be positive");
  BOFL_REQUIRE(!lengthscales_.empty(), "need at least one lengthscale");
  for (double ls : lengthscales_) {
    BOFL_REQUIRE(ls > 0.0, "lengthscales must be positive");
  }
}

double Kernel::operator()(const linalg::Vector& a,
                          const linalg::Vector& b) const {
  BOFL_REQUIRE(a.size() == lengthscales_.size() && b.size() == a.size(),
               "kernel input dimension mismatch");
  // Routed through the dispatched row kernel (count = 1) so that a single
  // pairwise evaluation is bit-identical to the same pair inside a
  // gram/cross batch, at every dispatch level.
  double out = 0.0;
  const double* pt = b.data();
  linalg::simd::corr_row(to_corr(family_), a.data(), &pt, 1,
                         lengthscales_.data(), lengthscales_.size(),
                         signal_variance_, &out);
  return out;
}

linalg::Matrix Kernel::gram(const std::vector<linalg::Vector>& points,
                            runtime::ThreadPool* pool) const {
  const std::size_t n = points.size();
  const std::size_t dim = lengthscales_.size();
  std::vector<const double*> ptrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    BOFL_REQUIRE(points[i].size() == dim, "kernel input dimension mismatch");
    ptrs[i] = points[i].data();
  }
  linalg::Matrix k(n, n);
  // Each row evaluates its strict upper triangle in one dispatched batch
  // (the row's slots in k are contiguous), then mirrors below the diagonal.
  auto fill_row = [&](std::size_t i) {
    k(i, i) = signal_variance_;
    if (i + 1 < n) {
      linalg::simd::corr_row(to_corr(family_), ptrs[i], ptrs.data() + i + 1,
                             n - i - 1, lengthscales_.data(), dim,
                             signal_variance_, k.row(i) + i + 1);
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      k(j, i) = k(i, j);
    }
  };
  // Below ~48 points the n^2/2 kernel evaluations are cheaper than waking
  // workers; the GP fits in hyperopt's inner loop live mostly below this.
  constexpr std::size_t kParallelThreshold = 48;
  if (pool != nullptr && n >= kParallelThreshold) {
    runtime::parallel_for_each(pool, n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      fill_row(i);
    }
  }
  return k;
}

linalg::Vector Kernel::cross(const linalg::Vector& x,
                             const std::vector<linalg::Vector>& points) const {
  const std::size_t dim = lengthscales_.size();
  BOFL_REQUIRE(x.size() == dim, "kernel input dimension mismatch");
  std::vector<const double*> ptrs(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    BOFL_REQUIRE(points[i].size() == dim, "kernel input dimension mismatch");
    ptrs[i] = points[i].data();
  }
  linalg::Vector k(points.size());
  linalg::simd::corr_row(to_corr(family_), x.data(), ptrs.data(), ptrs.size(),
                         lengthscales_.data(), dim, signal_variance_,
                         k.data());
  return k;
}

}  // namespace bofl::gp
