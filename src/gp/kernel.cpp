#include "gp/kernel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "runtime/thread_pool.hpp"

namespace bofl::gp {

const char* to_string(KernelFamily family) {
  switch (family) {
    case KernelFamily::kMatern52:
      return "matern52";
    case KernelFamily::kMatern32:
      return "matern32";
    case KernelFamily::kRbf:
      return "rbf";
  }
  return "unknown";
}

std::optional<KernelFamily> kernel_family_from_string(std::string_view name) {
  for (const KernelFamily family :
       {KernelFamily::kMatern52, KernelFamily::kMatern32, KernelFamily::kRbf}) {
    if (name == to_string(family)) {
      return family;
    }
  }
  return std::nullopt;
}

Kernel::Kernel(KernelFamily family, double signal_variance,
               std::vector<double> lengthscales)
    : family_(family),
      signal_variance_(signal_variance),
      lengthscales_(std::move(lengthscales)) {
  BOFL_REQUIRE(signal_variance_ > 0.0, "signal variance must be positive");
  BOFL_REQUIRE(!lengthscales_.empty(), "need at least one lengthscale");
  for (double ls : lengthscales_) {
    BOFL_REQUIRE(ls > 0.0, "lengthscales must be positive");
  }
}

double Kernel::correlation(double r) const {
  switch (family_) {
    case KernelFamily::kMatern52: {
      const double s = std::sqrt(5.0) * r;
      return (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
    case KernelFamily::kMatern32: {
      const double s = std::sqrt(3.0) * r;
      return (1.0 + s) * std::exp(-s);
    }
    case KernelFamily::kRbf:
      return std::exp(-0.5 * r * r);
  }
  BOFL_ASSERT(false, "unreachable kernel family");
}

double Kernel::operator()(const linalg::Vector& a,
                          const linalg::Vector& b) const {
  BOFL_REQUIRE(a.size() == lengthscales_.size() && b.size() == a.size(),
               "kernel input dimension mismatch");
  double r2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = (a[i] - b[i]) / lengthscales_[i];
    r2 += d * d;
  }
  return signal_variance_ * correlation(std::sqrt(r2));
}

linalg::Matrix Kernel::gram(const std::vector<linalg::Vector>& points,
                            runtime::ThreadPool* pool) const {
  const std::size_t n = points.size();
  linalg::Matrix k(n, n);
  auto fill_row = [&](std::size_t i) {
    k(i, i) = signal_variance_;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = (*this)(points[i], points[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  };
  // Below ~48 points the n^2/2 kernel evaluations are cheaper than waking
  // workers; the GP fits in hyperopt's inner loop live mostly below this.
  constexpr std::size_t kParallelThreshold = 48;
  if (pool != nullptr && n >= kParallelThreshold) {
    runtime::parallel_for_each(pool, n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      fill_row(i);
    }
  }
  return k;
}

linalg::Vector Kernel::cross(const linalg::Vector& x,
                             const std::vector<linalg::Vector>& points) const {
  linalg::Vector k(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    k[i] = (*this)(x, points[i]);
  }
  return k;
}

}  // namespace bofl::gp
