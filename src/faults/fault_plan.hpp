// Declarative fault plans: what goes wrong, when, and how badly.
//
// A FaultPlan is a seed plus a list of FaultSpec generators.  Device-level
// kinds (thermal-storm, co-runner, dvfs-clamp, sensor-dropout) describe
// episodes on the owning client's simulated clock; FL-level kinds
// (straggler, client-dropout, deadline-jitter) describe per-round
// perturbations drawn by the server loop.  Plans serialize to/from a small
// JSON dialect so `bofl_sim --faults plan.json` and the scenario harness
// share one format.
//
// Determinism contract: every decision a plan induces is a pure function of
// (plan seed, spec index, round, client, episode/draw counter) — see
// fault_injector.hpp.  Re-running any plan with the same seed reproduces
// bit-identical fault sequences for any worker count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bofl::telemetry {
class JsonValue;
struct JsonNode;
}  // namespace bofl::telemetry

namespace bofl::faults {

enum class FaultKind {
  /// Device: sustained slowdown episode (transparent throttling storm);
  /// latency multiplied by `magnitude`, energy by the same factor (the
  /// device is busy for the whole stretched job).
  kThermalStorm,
  /// Device: co-running load steals cycles; latency multiplied by
  /// `magnitude`, energy by sqrt(magnitude) (the co-runner pays part of
  /// the joint power bill).
  kCoRunner,
  /// Device: the platform governor rejects requested DVFS points and caps
  /// every axis index at `magnitude` * (steps - 1) during the episode.
  kDvfsClamp,
  /// Device: each measurement read inside the episode fails independently
  /// with `probability`; a failed read multiplies the *measured* latency
  /// and energy by `magnitude` (or 1/magnitude — the draw picks a side).
  kSensorDropout,
  /// FL: with `probability` per (round, client), the client's report is
  /// delayed by (magnitude - 1) x the round deadline.
  kStraggler,
  /// FL: with `probability` per (round, client), the client vanishes
  /// before training starts.
  kClientDropout,
  /// FL: with `probability` per round, the server's assigned deadline is
  /// multiplied by a factor uniform in [1 - magnitude, 1 + magnitude].
  kDeadlineJitter,
};

[[nodiscard]] const char* to_string(FaultKind kind);
[[nodiscard]] std::optional<FaultKind> fault_kind_from_string(
    std::string_view name);

/// Is this kind consumed through the per-client device channel (as opposed
/// to the server round loop)?
[[nodiscard]] bool is_device_fault(FaultKind kind);

/// One fault generator.  Windowed (device) kinds produce episodes
/// [start_s + k * period_s, + duration_s) for k = 0, 1, ... on the owning
/// client's SimClock; period_s == 0 means a single episode.  FL-level kinds
/// reuse the same window arithmetic with ROUNDS as the unit (start_s = first
/// affected round index), and duration_s == 0 with period_s == 0 means
/// open-ended from start_s on.
struct FaultSpec {
  FaultKind kind = FaultKind::kThermalStorm;
  double start_s = 0.0;
  double duration_s = 0.0;
  double period_s = 0.0;
  /// Strength; meaning depends on the kind (see FaultKind docs).
  double magnitude = 1.0;
  /// Per-draw probability for probabilistic kinds; windowed multiplier
  /// kinds ignore it.
  double probability = 1.0;
  /// Restrict to one client id; -1 (default) applies to every client.
  std::int64_t client = -1;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

struct FaultPlan {
  /// Base seed for every derived fault stream.  The effective seed of a
  /// run combines this with the run's own seed (see FaultInjector).
  std::uint64_t seed = 0;
  std::string name;  ///< optional label (scenario name), carried into events
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }
  [[nodiscard]] bool has_device_faults() const;
  [[nodiscard]] bool has_fl_faults() const;

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;

  /// Compact JSON: {"seed":..,"name":..,"faults":[{...},...]}.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static FaultPlan from_json(const std::string& text);
  [[nodiscard]] static FaultPlan from_json_file(const std::string& path);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Dialect helpers shared with FleetScenario: one FaultSpec as a JSON
/// object with the canonical field order, and back (throws on a malformed
/// node).  FaultPlan's own (de)serialization goes through these too, so
/// embedded and standalone fault lists stay byte-compatible.
[[nodiscard]] telemetry::JsonValue fault_spec_to_json(const FaultSpec& spec);
[[nodiscard]] FaultSpec fault_spec_from_json(const telemetry::JsonNode& node);

}  // namespace bofl::faults
