#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_recorder.hpp"

namespace bofl::faults {

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// Stateless uniform draw in [0, 1): a pure function of its four inputs.
/// Three chained SplitMix64 passes decorrelate adjacent keys (same design
/// as stream_seed, one level deeper).
double hash_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) {
  std::uint64_t state = seed;
  state = splitmix64(state) ^ ((a + 1) * kGolden);
  state = splitmix64(state) ^ ((b + 1) * kGolden);
  state = splitmix64(state) ^ ((c + 1) * kGolden);
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool applies_to(const FaultSpec& spec, std::int64_t client) {
  return spec.client < 0 || spec.client == client;
}

/// Episode membership at time (or round) `t`.  duration_s == 0 with
/// period_s == 0 means open-ended from start_s on (FL kinds only; the plan
/// validator rejects that shape for device kinds).
bool active_at(const FaultSpec& spec, double t) {
  if (t < spec.start_s) {
    return false;
  }
  if (spec.period_s == 0.0) {
    return spec.duration_s == 0.0 || t < spec.start_s + spec.duration_s;
  }
  const double phase = std::fmod(t - spec.start_s, spec.period_s);
  return phase < spec.duration_s;
}

std::int64_t episode_index(const FaultSpec& spec, double t) {
  if (spec.period_s == 0.0) {
    return 0;
  }
  return static_cast<std::int64_t>(
      std::floor((t - spec.start_s) / spec.period_s));
}

/// Does any episode of `spec` intersect [t0, t1)?
bool window_overlaps(const FaultSpec& spec, double t0, double t1) {
  if (t1 <= spec.start_s) {
    return false;
  }
  if (spec.period_s == 0.0) {
    return spec.duration_s == 0.0 || t0 < spec.start_s + spec.duration_s;
  }
  const double base = std::max(t0, spec.start_s);
  if (t1 - base >= spec.period_s) {
    // The query window spans a full period, which contains an episode.
    return true;
  }
  const double k = std::floor((base - spec.start_s) / spec.period_s);
  for (int step = 0; step <= 1; ++step) {
    const double window_start =
        spec.start_s + (k + static_cast<double>(step)) * spec.period_s;
    if (window_start < t1 && window_start + spec.duration_s > t0) {
      return true;
    }
  }
  return false;
}

}  // namespace

void emit_fault_event(const FaultEvent& event) {
  if (telemetry::Registry* reg = telemetry::global_registry()) {
    reg->counter("faults.events").add(1);
  }
  if (telemetry::RunRecorder* rec = telemetry::global_recorder()) {
    telemetry::JsonValue fields = telemetry::JsonValue::object();
    fields.set("kind", to_string(event.kind))
        .set("round", event.round)
        .set("client", event.client)
        .set("time_s", event.time_s)
        .set("magnitude", event.magnitude);
    rec->emit("fault", std::move(fields));
  }
}

DeviceFaultChannel::DeviceFaultChannel(std::vector<IndexedSpec> specs,
                                       std::uint64_t seed, std::int64_t client)
    : specs_(std::move(specs)),
      seed_(seed),
      client_(client),
      last_episode_(specs_.size(), -1) {
  for (const IndexedSpec& entry : specs_) {
    BOFL_REQUIRE(is_device_fault(entry.spec.kind),
                 "device channel fed a round-level fault kind");
  }
}

DeviceFaultChannel::JobEffect DeviceFaultChannel::job_effect(double now_s) {
  JobEffect effect;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& spec = specs_[i].spec;
    if (spec.kind == FaultKind::kSensorDropout || !active_at(spec, now_s)) {
      continue;
    }
    switch (spec.kind) {
      case FaultKind::kThermalStorm:
        effect.latency_multiplier *= spec.magnitude;
        effect.energy_multiplier *= spec.magnitude;
        break;
      case FaultKind::kCoRunner:
        effect.latency_multiplier *= spec.magnitude;
        effect.energy_multiplier *= std::sqrt(spec.magnitude);
        break;
      case FaultKind::kDvfsClamp:
        effect.config_cap = std::min(effect.config_cap, spec.magnitude);
        break;
      default:
        break;
    }
    const std::int64_t episode = episode_index(spec, now_s);
    if (last_episode_[i] != episode) {
      // First job bitten by this episode: queue one entry event.
      last_episode_[i] = episode;
      pending_.push_back(
          {spec.kind, /*round=*/-1, client_, now_s, spec.magnitude});
    }
  }
  return effect;
}

double DeviceFaultChannel::measurement_distortion(double now_s) {
  double distortion = 1.0;
  for (const IndexedSpec& entry : specs_) {
    const FaultSpec& spec = entry.spec;
    if (spec.kind != FaultKind::kSensorDropout || !active_at(spec, now_s)) {
      continue;
    }
    // Two private-counter draws per read: did it fail, and which way the
    // garbage points.  The counter advances on healthy reads too, keeping
    // the stream independent of *when* failures land.
    const double hit = hash_uniform(seed_, entry.index,
                                    static_cast<std::uint64_t>(client_),
                                    read_draws_++);
    const double side = hash_uniform(seed_, entry.index,
                                     static_cast<std::uint64_t>(client_),
                                     read_draws_++);
    if (hit >= spec.probability) {
      continue;
    }
    const double factor =
        side < 0.5 ? spec.magnitude : 1.0 / spec.magnitude;
    distortion *= factor;
    pending_.push_back({spec.kind, /*round=*/-1, client_, now_s, factor});
  }
  return distortion;
}

DeviceFaultChannel::WorstCase DeviceFaultChannel::worst_case_in(
    double t0_s, double t1_s) const {
  WorstCase worst;
  for (const IndexedSpec& entry : specs_) {
    const FaultSpec& spec = entry.spec;
    if (spec.kind == FaultKind::kSensorDropout ||
        !window_overlaps(spec, t0_s, t1_s)) {
      continue;
    }
    switch (spec.kind) {
      case FaultKind::kThermalStorm:
      case FaultKind::kCoRunner:
        worst.latency_multiplier *= spec.magnitude;
        break;
      case FaultKind::kDvfsClamp:
        worst.config_cap = std::min(worst.config_cap, spec.magnitude);
        break;
      default:
        break;
    }
  }
  return worst;
}

std::vector<FaultEvent> DeviceFaultChannel::drain_events(std::int64_t round) {
  std::vector<FaultEvent> events = std::move(pending_);
  pending_.clear();
  for (FaultEvent& event : events) {
    event.round = round;
  }
  return events;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t run_seed)
    : plan_(std::move(plan)), seed_(stream_seed(plan_.seed, run_seed)) {
  plan_.validate();
}

std::unique_ptr<DeviceFaultChannel> FaultInjector::make_device_channel(
    std::int64_t client) const {
  std::vector<DeviceFaultChannel::IndexedSpec> specs;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (is_device_fault(spec.kind) && applies_to(spec, client)) {
      specs.push_back({spec, i});
    }
  }
  return std::make_unique<DeviceFaultChannel>(
      std::move(specs), stream_seed(seed_, static_cast<std::uint64_t>(client)),
      client);
}

bool FaultInjector::client_drops(std::int64_t round,
                                 std::int64_t client) const {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind != FaultKind::kClientDropout || !applies_to(spec, client) ||
        !active_at(spec, static_cast<double>(round))) {
      continue;
    }
    const double u = hash_uniform(seed_, i, static_cast<std::uint64_t>(round),
                                  static_cast<std::uint64_t>(client));
    if (u < spec.probability) {
      return true;
    }
  }
  return false;
}

double FaultInjector::straggler_factor(std::int64_t round,
                                       std::int64_t client) const {
  double factor = 1.0;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind != FaultKind::kStraggler || !applies_to(spec, client) ||
        !active_at(spec, static_cast<double>(round))) {
      continue;
    }
    const double u = hash_uniform(seed_, i, static_cast<std::uint64_t>(round),
                                  static_cast<std::uint64_t>(client));
    if (u < spec.probability) {
      factor = std::max(factor, spec.magnitude);
    }
  }
  return factor;
}

double FaultInjector::deadline_jitter(std::int64_t round) const {
  double factor = 1.0;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind != FaultKind::kDeadlineJitter ||
        !active_at(spec, static_cast<double>(round))) {
      continue;
    }
    const double hit = hash_uniform(seed_, i,
                                    static_cast<std::uint64_t>(round), 0xF1);
    if (hit >= spec.probability) {
      continue;
    }
    const double u = hash_uniform(seed_, i,
                                  static_cast<std::uint64_t>(round), 0xF2);
    factor *= 1.0 - spec.magnitude + 2.0 * spec.magnitude * u;
  }
  return factor;
}

}  // namespace bofl::faults
