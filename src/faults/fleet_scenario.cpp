#include "faults/fleet_scenario.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "device/workload.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_reader.hpp"

namespace bofl::faults {

namespace {

using telemetry::JsonNode;
using telemetry::JsonValue;
using telemetry::number_field;

std::int64_t int_field(const JsonNode& node, const char* key,
                       double fallback) {
  return static_cast<std::int64_t>(number_field(node, key, fallback));
}

}  // namespace

double DiurnalSpec::wave(std::int64_t round) const {
  // Exact piecewise-linear triangle: no libm, so the factors (and every
  // quantity derived from them) are bit-identical across platforms.
  const double pos = static_cast<double>(round % period_rounds) /
                     static_cast<double>(period_rounds);
  double deviation = 2.0 * pos - 1.0;
  if (deviation < 0.0) {
    deviation = -deviation;
  }
  return 1.0 - 2.0 * deviation;
}

double DiurnalSpec::cohort_factor(std::int64_t round) const {
  if (period_rounds <= 0) {
    return 1.0;
  }
  return 1.0 + cohort_amplitude * wave(round);
}

double DiurnalSpec::deadline_factor(std::int64_t round) const {
  if (period_rounds <= 0) {
    return 1.0;
  }
  return 1.0 - deadline_amplitude * wave(round);
}

void FleetScenario::validate() const {
  const auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  BOFL_REQUIRE(probability(churn.leave_prob),
               "churn leave_prob must be in [0, 1]");
  BOFL_REQUIRE(probability(churn.rejoin_prob),
               "churn rejoin_prob must be in [0, 1]");
  BOFL_REQUIRE(probability(churn.reset_prob),
               "churn reset_prob must be in [0, 1]");
  BOFL_REQUIRE(churn.start_round >= 0,
               "churn start_round cannot be negative");
  BOFL_REQUIRE(diurnal.period_rounds >= 0,
               "diurnal period_rounds cannot be negative");
  const auto amplitude = [](double a) { return a >= 0.0 && a < 1.0; };
  BOFL_REQUIRE(amplitude(diurnal.cohort_amplitude),
               "diurnal cohort_amplitude must be in [0, 1)");
  BOFL_REQUIRE(amplitude(diurnal.deadline_amplitude),
               "diurnal deadline_amplitude must be in [0, 1)");
  for (const TaskSwitchSpec& ts : task_switches) {
    BOFL_REQUIRE(ts.round >= 0, "task switch round cannot be negative");
    BOFL_REQUIRE(ts.cluster >= -1,
                 "task switch cluster must be -1 or a cluster index");
    BOFL_REQUIRE(device::profile_from_string(ts.profile).has_value(),
                 "unknown task switch profile: " + ts.profile);
  }
  BOFL_REQUIRE(battery.capacity_j >= 0.0,
               "battery capacity_j cannot be negative");
  BOFL_REQUIRE(battery.recharge_j_per_round >= 0.0,
               "battery recharge_j_per_round cannot be negative");
  BOFL_REQUIRE(probability(battery.resume_fraction),
               "battery resume_fraction must be in [0, 1]");
  fault_plan.validate();
}

std::string FleetScenario::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("seed", seed).set("name", name);
  JsonValue churn_obj = JsonValue::object();
  churn_obj.set("leave_prob", churn.leave_prob)
      .set("rejoin_prob", churn.rejoin_prob)
      .set("reset_prob", churn.reset_prob)
      .set("start_round", churn.start_round);
  root.set("churn", std::move(churn_obj));
  JsonValue diurnal_obj = JsonValue::object();
  diurnal_obj.set("period_rounds", diurnal.period_rounds)
      .set("cohort_amplitude", diurnal.cohort_amplitude)
      .set("deadline_amplitude", diurnal.deadline_amplitude);
  root.set("diurnal", std::move(diurnal_obj));
  JsonValue switches = JsonValue::array();
  for (const TaskSwitchSpec& ts : task_switches) {
    JsonValue entry = JsonValue::object();
    entry.set("round", ts.round)
        .set("cluster", ts.cluster)
        .set("profile", ts.profile);
    switches.push_back(std::move(entry));
  }
  root.set("task_switches", std::move(switches));
  JsonValue battery_obj = JsonValue::object();
  battery_obj.set("capacity_j", battery.capacity_j)
      .set("recharge_j_per_round", battery.recharge_j_per_round)
      .set("resume_fraction", battery.resume_fraction);
  root.set("battery", std::move(battery_obj));
  JsonValue fault_list = JsonValue::array();
  for (const FaultSpec& spec : fault_plan.faults) {
    fault_list.push_back(fault_spec_to_json(spec));
  }
  root.set("faults", std::move(fault_list));
  return root.dump();
}

FleetScenario FleetScenario::from_json(const std::string& text) {
  const JsonNode root = telemetry::parse_json(text);
  BOFL_REQUIRE(root.type == JsonNode::Type::kObject,
               "a fleet scenario must be a JSON object");
  FleetScenario scenario;
  scenario.seed = static_cast<std::uint64_t>(number_field(root, "seed", 0.0));
  if (const JsonNode* name = root.find("name")) {
    BOFL_REQUIRE(name->type == JsonNode::Type::kString,
                 "fleet scenario 'name' must be a string");
    scenario.name = name->string;
  }
  if (const JsonNode* churn = root.find("churn")) {
    BOFL_REQUIRE(churn->type == JsonNode::Type::kObject,
                 "fleet scenario 'churn' must be an object");
    scenario.churn.leave_prob = number_field(*churn, "leave_prob", 0.0);
    scenario.churn.rejoin_prob = number_field(*churn, "rejoin_prob", 0.0);
    scenario.churn.reset_prob = number_field(*churn, "reset_prob", 0.0);
    scenario.churn.start_round = int_field(*churn, "start_round", 0.0);
  }
  if (const JsonNode* diurnal = root.find("diurnal")) {
    BOFL_REQUIRE(diurnal->type == JsonNode::Type::kObject,
                 "fleet scenario 'diurnal' must be an object");
    scenario.diurnal.period_rounds =
        int_field(*diurnal, "period_rounds", 0.0);
    scenario.diurnal.cohort_amplitude =
        number_field(*diurnal, "cohort_amplitude", 0.0);
    scenario.diurnal.deadline_amplitude =
        number_field(*diurnal, "deadline_amplitude", 0.0);
  }
  if (const JsonNode* switches = root.find("task_switches")) {
    BOFL_REQUIRE(switches->type == JsonNode::Type::kArray,
                 "fleet scenario 'task_switches' must be an array");
    for (const JsonNode& entry : switches->array) {
      BOFL_REQUIRE(entry.type == JsonNode::Type::kObject,
                   "each task switch must be a JSON object");
      TaskSwitchSpec ts;
      ts.round = int_field(entry, "round", 0.0);
      ts.cluster = int_field(entry, "cluster", -1.0);
      const JsonNode* profile = entry.find("profile");
      BOFL_REQUIRE(
          profile != nullptr && profile->type == JsonNode::Type::kString,
          "each task switch needs a string 'profile'");
      ts.profile = profile->string;
      scenario.task_switches.push_back(std::move(ts));
    }
  }
  if (const JsonNode* battery = root.find("battery")) {
    BOFL_REQUIRE(battery->type == JsonNode::Type::kObject,
                 "fleet scenario 'battery' must be an object");
    scenario.battery.capacity_j = number_field(*battery, "capacity_j", 0.0);
    scenario.battery.recharge_j_per_round =
        number_field(*battery, "recharge_j_per_round", 0.0);
    scenario.battery.resume_fraction =
        number_field(*battery, "resume_fraction", 0.25);
  }
  if (const JsonNode* faults = root.find("faults")) {
    BOFL_REQUIRE(faults->type == JsonNode::Type::kArray,
                 "fleet scenario 'faults' must be an array");
    for (const JsonNode& entry : faults->array) {
      scenario.fault_plan.faults.push_back(fault_spec_from_json(entry));
    }
  }
  // The embedded plan rides the scenario's identity: one seed, one label.
  scenario.fault_plan.seed = scenario.seed;
  scenario.fault_plan.name = scenario.name;
  scenario.validate();
  return scenario;
}

FleetScenario FleetScenario::from_json_file(const std::string& path) {
  std::ifstream in(path);
  BOFL_REQUIRE(in.is_open(), "cannot open fleet scenario: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

namespace {

struct NamedFleetScenario {
  const char* name;
  const char* description;
};

constexpr NamedFleetScenario kFleetScenarios[] = {
    {"steady",
     "no population dynamics; the baseline every fleet invariant compares "
     "to"},
    {"churn",
     "5%/round leave, 25%/round re-join; 30% of re-joins lose their pace "
     "state and re-admit through the cluster prior"},
    {"diurnal",
     "8-round day: cohort size swings +-60% while deadlines tighten up to "
     "30% at the peak"},
    {"task-switch",
     "every cluster switches to ResNet50 at round 10, forcing "
     "re-exploration under the new cluster key"},
    {"battery-budget",
     "tight per-client energy budgets; drained clients sit out rounds "
     "until recharged past the resume watermark"},
};

}  // namespace

const std::vector<std::string>& fleet_scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> list;
    for (const NamedFleetScenario& entry : kFleetScenarios) {
      list.emplace_back(entry.name);
    }
    return list;
  }();
  return names;
}

const char* fleet_scenario_description(const std::string& name) {
  for (const NamedFleetScenario& entry : kFleetScenarios) {
    if (name == entry.name) {
      return entry.description;
    }
  }
  return "";
}

FleetScenario make_fleet_scenario(const std::string& name,
                                  std::uint64_t seed) {
  FleetScenario scenario;
  scenario.seed = seed;
  scenario.name = name;
  scenario.fault_plan.seed = seed;
  scenario.fault_plan.name = name;
  if (name == "steady") {
    // Intentionally empty.
  } else if (name == "churn") {
    scenario.churn.leave_prob = 0.05;
    scenario.churn.rejoin_prob = 0.25;
    scenario.churn.reset_prob = 0.30;
    scenario.churn.start_round = 2;
  } else if (name == "diurnal") {
    scenario.diurnal.period_rounds = 8;
    scenario.diurnal.cohort_amplitude = 0.60;
    scenario.diurnal.deadline_amplitude = 0.30;
  } else if (name == "task-switch") {
    TaskSwitchSpec ts;
    ts.round = 10;
    ts.cluster = -1;
    ts.profile = "resnet50";
    scenario.task_switches.push_back(std::move(ts));
  } else if (name == "battery-budget") {
    // Tight against the ~280 J an AGX/ViT participation costs: one round of
    // training nearly drains the pack and the trickle recharge needs ~6
    // clean rounds to climb back over the 80% resume watermark, so clients
    // re-selected shortly after participating sit the round out.
    scenario.battery.capacity_j = 350.0;
    scenario.battery.recharge_j_per_round = 40.0;
    scenario.battery.resume_fraction = 0.8;
  } else {
    BOFL_REQUIRE(false, "unknown fleet scenario: " + name);
  }
  scenario.validate();
  return scenario;
}

}  // namespace bofl::faults
