#include "faults/fault_plan.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_reader.hpp"

namespace bofl::faults {

namespace {

using telemetry::JsonNode;
using telemetry::number_field;

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kThermalStorm, "thermal-storm"},
    {FaultKind::kCoRunner, "co-runner"},
    {FaultKind::kDvfsClamp, "dvfs-clamp"},
    {FaultKind::kSensorDropout, "sensor-dropout"},
    {FaultKind::kStraggler, "straggler"},
    {FaultKind::kClientDropout, "client-dropout"},
    {FaultKind::kDeadlineJitter, "deadline-jitter"},
};

}  // namespace

const char* to_string(FaultKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view name) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      return entry.kind;
    }
  }
  return std::nullopt;
}

bool is_device_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThermalStorm:
    case FaultKind::kCoRunner:
    case FaultKind::kDvfsClamp:
    case FaultKind::kSensorDropout:
      return true;
    case FaultKind::kStraggler:
    case FaultKind::kClientDropout:
    case FaultKind::kDeadlineJitter:
      return false;
  }
  return false;
}

bool FaultPlan::has_device_faults() const {
  for (const FaultSpec& spec : faults) {
    if (is_device_fault(spec.kind)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::has_fl_faults() const {
  for (const FaultSpec& spec : faults) {
    if (!is_device_fault(spec.kind)) {
      return true;
    }
  }
  return false;
}

void FaultPlan::validate() const {
  for (const FaultSpec& spec : faults) {
    BOFL_REQUIRE(spec.start_s >= 0.0, "fault start_s cannot be negative");
    BOFL_REQUIRE(spec.duration_s >= 0.0, "fault duration_s cannot be negative");
    BOFL_REQUIRE(spec.period_s == 0.0 || spec.period_s >= spec.duration_s,
                 "recurring faults need period_s >= duration_s");
    BOFL_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                 "fault probability must be in [0, 1]");
    BOFL_REQUIRE(spec.client >= -1, "fault client must be -1 or a client id");
    switch (spec.kind) {
      case FaultKind::kThermalStorm:
      case FaultKind::kCoRunner:
      case FaultKind::kStraggler:
        BOFL_REQUIRE(spec.magnitude >= 1.0,
                     "slowdown magnitude must be >= 1 (a fault cannot speed "
                     "the device up)");
        break;
      case FaultKind::kDvfsClamp:
        BOFL_REQUIRE(spec.magnitude > 0.0 && spec.magnitude <= 1.0,
                     "dvfs-clamp magnitude is an axis cap fraction in (0, 1]");
        break;
      case FaultKind::kSensorDropout:
        BOFL_REQUIRE(spec.magnitude >= 1.0,
                     "sensor-dropout magnitude must be >= 1");
        break;
      case FaultKind::kClientDropout:
        break;
      case FaultKind::kDeadlineJitter:
        BOFL_REQUIRE(spec.magnitude >= 0.0 && spec.magnitude < 1.0,
                     "deadline-jitter magnitude must be in [0, 1)");
        break;
    }
    if (is_device_fault(spec.kind)) {
      BOFL_REQUIRE(spec.duration_s > 0.0,
                   "windowed device faults need duration_s > 0");
    }
  }
}

telemetry::JsonValue fault_spec_to_json(const FaultSpec& spec) {
  telemetry::JsonValue entry = telemetry::JsonValue::object();
  entry.set("kind", to_string(spec.kind))
      .set("start_s", spec.start_s)
      .set("duration_s", spec.duration_s)
      .set("period_s", spec.period_s)
      .set("magnitude", spec.magnitude)
      .set("probability", spec.probability)
      .set("client", spec.client);
  return entry;
}

FaultSpec fault_spec_from_json(const telemetry::JsonNode& node) {
  BOFL_REQUIRE(node.type == JsonNode::Type::kObject,
               "each fault must be a JSON object");
  const JsonNode* kind = node.find("kind");
  BOFL_REQUIRE(kind != nullptr && kind->type == JsonNode::Type::kString,
               "each fault needs a string 'kind'");
  const std::optional<FaultKind> parsed = fault_kind_from_string(kind->string);
  BOFL_REQUIRE(parsed.has_value(), "unknown fault kind: " + kind->string);
  FaultSpec spec;
  spec.kind = *parsed;
  spec.start_s = number_field(node, "start_s", 0.0);
  spec.duration_s = number_field(node, "duration_s", 0.0);
  spec.period_s = number_field(node, "period_s", 0.0);
  spec.magnitude = number_field(node, "magnitude", 1.0);
  spec.probability = number_field(node, "probability", 1.0);
  spec.client = static_cast<std::int64_t>(number_field(node, "client", -1.0));
  return spec;
}

std::string FaultPlan::to_json() const {
  telemetry::JsonValue root = telemetry::JsonValue::object();
  root.set("seed", seed).set("name", name);
  telemetry::JsonValue list = telemetry::JsonValue::array();
  for (const FaultSpec& spec : faults) {
    list.push_back(fault_spec_to_json(spec));
  }
  root.set("faults", std::move(list));
  return root.dump();
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const JsonNode root = telemetry::parse_json(text);
  BOFL_REQUIRE(root.type == JsonNode::Type::kObject,
               "a fault plan must be a JSON object");
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(number_field(root, "seed", 0.0));
  if (const JsonNode* name = root.find("name")) {
    BOFL_REQUIRE(name->type == JsonNode::Type::kString,
                 "fault plan 'name' must be a string");
    plan.name = name->string;
  }
  if (const JsonNode* list = root.find("faults")) {
    BOFL_REQUIRE(list->type == JsonNode::Type::kArray,
                 "fault plan 'faults' must be an array");
    for (const JsonNode& entry : list->array) {
      plan.faults.push_back(fault_spec_from_json(entry));
    }
  }
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::from_json_file(const std::string& path) {
  std::ifstream in(path);
  BOFL_REQUIRE(in.is_open(), "cannot open fault plan: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

}  // namespace bofl::faults
