#include "faults/fault_plan.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "telemetry/json.hpp"

namespace bofl::faults {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kThermalStorm, "thermal-storm"},
    {FaultKind::kCoRunner, "co-runner"},
    {FaultKind::kDvfsClamp, "dvfs-clamp"},
    {FaultKind::kSensorDropout, "sensor-dropout"},
    {FaultKind::kStraggler, "straggler"},
    {FaultKind::kClientDropout, "client-dropout"},
    {FaultKind::kDeadlineJitter, "deadline-jitter"},
};

// --- Minimal JSON reader (objects, arrays, strings, numbers, bools, null).
// The telemetry JsonValue is write-only by design; plans are the first
// thing the repo *reads* as JSON, and this covers exactly the dialect
// FaultPlan::to_json emits.

struct JsonNode {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonNode> array;
  std::vector<std::pair<std::string, JsonNode>> object;

  [[nodiscard]] const JsonNode* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonNode parse() {
    JsonNode root = parse_value();
    skip_ws();
    BOFL_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    BOFL_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    BOFL_REQUIRE(peek() == c, std::string("expected '") + c + "' in JSON");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, literal) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  JsonNode parse_value() {
    JsonNode node;
    switch (peek()) {
      case '{': {
        node.type = JsonNode::Type::kObject;
        ++pos_;
        if (peek() == '}') {
          ++pos_;
          return node;
        }
        while (true) {
          std::string key = parse_string();
          expect(':');
          node.object.emplace_back(std::move(key), parse_value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return node;
        }
      }
      case '[': {
        node.type = JsonNode::Type::kArray;
        ++pos_;
        if (peek() == ']') {
          ++pos_;
          return node;
        }
        while (true) {
          node.array.push_back(parse_value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return node;
        }
      }
      case '"':
        node.type = JsonNode::Type::kString;
        node.string = parse_string();
        return node;
      case 't':
        BOFL_REQUIRE(consume_literal("true"), "malformed JSON literal");
        node.type = JsonNode::Type::kBool;
        node.boolean = true;
        return node;
      case 'f':
        BOFL_REQUIRE(consume_literal("false"), "malformed JSON literal");
        node.type = JsonNode::Type::kBool;
        node.boolean = false;
        return node;
      case 'n':
        BOFL_REQUIRE(consume_literal("null"), "malformed JSON literal");
        node.type = JsonNode::Type::kNull;
        return node;
      default: {
        node.type = JsonNode::Type::kNumber;
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        node.number = std::strtod(begin, &end);
        BOFL_REQUIRE(end != begin, "malformed JSON number");
        pos_ += static_cast<std::size_t>(end - begin);
        return node;
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      BOFL_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      BOFL_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          BOFL_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Plans only carry ASCII names; reject anything wider.
          BOFL_REQUIRE(code < 0x80, "non-ASCII \\u escape in fault plan");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          BOFL_REQUIRE(false, "unsupported JSON escape");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double number_field(const JsonNode& node, const std::string& key,
                    double fallback) {
  const JsonNode* field = node.find(key);
  if (field == nullptr) {
    return fallback;
  }
  BOFL_REQUIRE(field->type == JsonNode::Type::kNumber,
               "fault plan field '" + key + "' must be a number");
  return field->number;
}

}  // namespace

const char* to_string(FaultKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view name) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      return entry.kind;
    }
  }
  return std::nullopt;
}

bool is_device_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThermalStorm:
    case FaultKind::kCoRunner:
    case FaultKind::kDvfsClamp:
    case FaultKind::kSensorDropout:
      return true;
    case FaultKind::kStraggler:
    case FaultKind::kClientDropout:
    case FaultKind::kDeadlineJitter:
      return false;
  }
  return false;
}

bool FaultPlan::has_device_faults() const {
  for (const FaultSpec& spec : faults) {
    if (is_device_fault(spec.kind)) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::has_fl_faults() const {
  for (const FaultSpec& spec : faults) {
    if (!is_device_fault(spec.kind)) {
      return true;
    }
  }
  return false;
}

void FaultPlan::validate() const {
  for (const FaultSpec& spec : faults) {
    BOFL_REQUIRE(spec.start_s >= 0.0, "fault start_s cannot be negative");
    BOFL_REQUIRE(spec.duration_s >= 0.0, "fault duration_s cannot be negative");
    BOFL_REQUIRE(spec.period_s == 0.0 || spec.period_s >= spec.duration_s,
                 "recurring faults need period_s >= duration_s");
    BOFL_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                 "fault probability must be in [0, 1]");
    BOFL_REQUIRE(spec.client >= -1, "fault client must be -1 or a client id");
    switch (spec.kind) {
      case FaultKind::kThermalStorm:
      case FaultKind::kCoRunner:
      case FaultKind::kStraggler:
        BOFL_REQUIRE(spec.magnitude >= 1.0,
                     "slowdown magnitude must be >= 1 (a fault cannot speed "
                     "the device up)");
        break;
      case FaultKind::kDvfsClamp:
        BOFL_REQUIRE(spec.magnitude > 0.0 && spec.magnitude <= 1.0,
                     "dvfs-clamp magnitude is an axis cap fraction in (0, 1]");
        break;
      case FaultKind::kSensorDropout:
        BOFL_REQUIRE(spec.magnitude >= 1.0,
                     "sensor-dropout magnitude must be >= 1");
        break;
      case FaultKind::kClientDropout:
        break;
      case FaultKind::kDeadlineJitter:
        BOFL_REQUIRE(spec.magnitude >= 0.0 && spec.magnitude < 1.0,
                     "deadline-jitter magnitude must be in [0, 1)");
        break;
    }
    if (is_device_fault(spec.kind)) {
      BOFL_REQUIRE(spec.duration_s > 0.0,
                   "windowed device faults need duration_s > 0");
    }
  }
}

std::string FaultPlan::to_json() const {
  telemetry::JsonValue root = telemetry::JsonValue::object();
  root.set("seed", seed).set("name", name);
  telemetry::JsonValue list = telemetry::JsonValue::array();
  for (const FaultSpec& spec : faults) {
    telemetry::JsonValue entry = telemetry::JsonValue::object();
    entry.set("kind", to_string(spec.kind))
        .set("start_s", spec.start_s)
        .set("duration_s", spec.duration_s)
        .set("period_s", spec.period_s)
        .set("magnitude", spec.magnitude)
        .set("probability", spec.probability)
        .set("client", spec.client);
    list.push_back(std::move(entry));
  }
  root.set("faults", std::move(list));
  return root.dump();
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  JsonParser parser(text);
  const JsonNode root = parser.parse();
  BOFL_REQUIRE(root.type == JsonNode::Type::kObject,
               "a fault plan must be a JSON object");
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(number_field(root, "seed", 0.0));
  if (const JsonNode* name = root.find("name")) {
    BOFL_REQUIRE(name->type == JsonNode::Type::kString,
                 "fault plan 'name' must be a string");
    plan.name = name->string;
  }
  if (const JsonNode* list = root.find("faults")) {
    BOFL_REQUIRE(list->type == JsonNode::Type::kArray,
                 "fault plan 'faults' must be an array");
    for (const JsonNode& entry : list->array) {
      BOFL_REQUIRE(entry.type == JsonNode::Type::kObject,
                   "each fault must be a JSON object");
      const JsonNode* kind = entry.find("kind");
      BOFL_REQUIRE(kind != nullptr && kind->type == JsonNode::Type::kString,
                   "each fault needs a string 'kind'");
      const std::optional<FaultKind> parsed =
          fault_kind_from_string(kind->string);
      BOFL_REQUIRE(parsed.has_value(), "unknown fault kind: " + kind->string);
      FaultSpec spec;
      spec.kind = *parsed;
      spec.start_s = number_field(entry, "start_s", 0.0);
      spec.duration_s = number_field(entry, "duration_s", 0.0);
      spec.period_s = number_field(entry, "period_s", 0.0);
      spec.magnitude = number_field(entry, "magnitude", 1.0);
      spec.probability = number_field(entry, "probability", 1.0);
      spec.client =
          static_cast<std::int64_t>(number_field(entry, "client", -1.0));
      plan.faults.push_back(spec);
    }
  }
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::from_json_file(const std::string& path) {
  std::ifstream in(path);
  BOFL_REQUIRE(in.is_open(), "cannot open fault plan: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

}  // namespace bofl::faults
