// Named fault scenarios: curated FaultPlans exercising the failure modes
// the controller must survive.  Shared by `bofl_sim --scenario <name>`, the
// scenario test harness (tests/scenarios/) and the nightly randomized CI
// job, so all three agree on what "thermal-storm" means.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"

namespace bofl::faults {

/// All scenario names accepted by make_scenario, in a stable order
/// ("clean" first).
[[nodiscard]] const std::vector<std::string>& scenario_names();

/// One catalog row for scenario discoverability (`--list-scenarios`).
/// `hidden` marks scenarios make_scenario accepts but scenario_names()
/// omits — probes excluded from the generic sweep whose invariants they
/// deliberately break (today: "prior-poisoned").
struct ScenarioInfo {
  std::string name;
  std::string description;
  bool hidden = false;
};

/// Every scenario make_scenario accepts — public names in scenario_names()
/// order, then hidden ones — each with a one-line description.
[[nodiscard]] const std::vector<ScenarioInfo>& all_scenarios();

/// Build the named scenario.  Device episode windows scale with
/// `horizon_s`, the approximate per-client simulated duration of the run
/// (sum of round deadlines is a good estimate).  Throws
/// std::invalid_argument for unknown names.
///
///   clean             no faults; the baseline every invariant compares to
///   thermal-storm     periodic fleet-wide throttling storms + DVFS clamps
///   flaky-sysfs       transient measurement-read failures all run long
///   straggler-heavy   late reports and client dropouts every round
///   mid-round-throttle one long co-runner + clamp episode mid-horizon
[[nodiscard]] FaultPlan make_scenario(const std::string& name,
                                      std::uint64_t seed, double horizon_s);

}  // namespace bofl::faults
