#include "faults/scenarios.hpp"

#include "common/error.hpp"

namespace bofl::faults {

namespace {

FaultSpec windowed(FaultKind kind, double start_s, double duration_s,
                   double period_s, double magnitude) {
  FaultSpec spec;
  spec.kind = kind;
  spec.start_s = start_s;
  spec.duration_s = duration_s;
  spec.period_s = period_s;
  spec.magnitude = magnitude;
  return spec;
}

FaultSpec per_round(FaultKind kind, double magnitude, double probability) {
  FaultSpec spec;
  spec.kind = kind;
  spec.magnitude = magnitude;
  spec.probability = probability;
  return spec;  // start 0, duration 0, period 0: every round
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> list;
    for (const ScenarioInfo& info : all_scenarios()) {
      if (!info.hidden) {
        list.push_back(info.name);
      }
    }
    return list;
  }();
  return names;
}

const std::vector<ScenarioInfo>& all_scenarios() {
  static const std::vector<ScenarioInfo> catalog = {
      {"clean", "no faults; the baseline every invariant compares to",
       false},
      {"thermal-storm",
       "periodic fleet-wide 1.6x throttling storms with matching DVFS "
       "clamps",
       false},
      {"flaky-sysfs",
       "15% of measurement reads come back 4x off, all run long", false},
      {"straggler-heavy",
       "a quarter of reports land half a deadline late; 10% of clients "
       "vanish per round",
       false},
      {"mid-round-throttle",
       "one sustained mid-run co-runner episode with the top DVFS steps "
       "rejected",
       false},
      {"prior-poisoned",
       "whole-run 1.5x thermal degradation that makes a healthy-fleet "
       "prior mispredict; excluded from the generic sweep (its feasibility "
       "invariant does not hold here), used by the dedicated prior tests",
       true},
  };
  return catalog;
}

FaultPlan make_scenario(const std::string& name, std::uint64_t seed,
                        double horizon_s) {
  BOFL_REQUIRE(horizon_s > 0.0, "scenario horizon must be positive");
  FaultPlan plan;
  plan.seed = seed;
  plan.name = name;
  if (name == "clean") {
    // Baseline: the plan exists (so the harness runs one code path) but
    // perturbs nothing.
  } else if (name == "thermal-storm") {
    // Recurring fleet-wide storms: every storm slows jobs 1.6x and the
    // governor clamps the top DVFS steps for the same window.
    plan.faults.push_back(windowed(FaultKind::kThermalStorm,
                                   0.20 * horizon_s, 0.12 * horizon_s,
                                   0.35 * horizon_s, 1.6));
    plan.faults.push_back(windowed(FaultKind::kDvfsClamp, 0.20 * horizon_s,
                                   0.12 * horizon_s, 0.35 * horizon_s, 0.7));
  } else if (name == "flaky-sysfs") {
    // Sensor reads fail sporadically for the whole run: 15% of reads come
    // back 4x off (either direction).
    FaultSpec flaky = windowed(FaultKind::kSensorDropout, 0.0, horizon_s,
                               0.0, 4.0);
    flaky.probability = 0.15;
    plan.faults.push_back(flaky);
  } else if (name == "straggler-heavy") {
    // A quarter of reports land half a deadline late; clients occasionally
    // vanish outright.
    plan.faults.push_back(
        per_round(FaultKind::kStraggler, /*magnitude=*/1.5,
                  /*probability=*/0.25));
    plan.faults.push_back(per_round(FaultKind::kClientDropout,
                                    /*magnitude=*/1.0, /*probability=*/0.10));
  } else if (name == "prior-poisoned") {
    // Knowledge-plane poisoning probe: the unit is thermally degraded for
    // the WHOLE run (1.5x slower, from the first job), so a cluster prior
    // calibrated on healthy devices mispredicts immediately and the
    // controller must demote it to cold-start.  Deliberately NOT in
    // scenario_names(): the generic scenario sweep asserts that at least
    // half of each run's rounds are pessimistically feasible, which a
    // persistent 1.5x slowdown under tight ratios does not guarantee —
    // this plan exists for the dedicated prior tests (prior_scenario_test).
    plan.faults.push_back(
        windowed(FaultKind::kThermalStorm, 0.0, horizon_s, 0.0, 1.5));
  } else if (name == "mid-round-throttle") {
    // One sustained mid-run episode: a co-runner steals cycles while the
    // governor rejects the top half of every frequency table.  The
    // controller has warmed up on clean rounds and must re-arm.
    plan.faults.push_back(windowed(FaultKind::kCoRunner, 0.40 * horizon_s,
                                   0.25 * horizon_s, 0.0, 1.4));
    plan.faults.push_back(windowed(FaultKind::kDvfsClamp, 0.40 * horizon_s,
                                   0.25 * horizon_s, 0.0, 0.5));
  } else {
    BOFL_REQUIRE(false, "unknown scenario: " + name);
  }
  plan.validate();
  return plan;
}

}  // namespace bofl::faults
