// Declarative fleet-population scenarios: what the POPULATION does over a
// fleet run, as opposed to what goes wrong on one device (fault_plan.hpp).
//
// A FleetScenario extends the FaultPlan JSON dialect with four population
// processes, all keyed on the fleet round index:
//   * churn     — clients leave and re-join; a re-join either restores the
//                 client's pace state (its trajectory cursor — the fleet
//                 analogue of a state_io resume) or loses it (app killed,
//                 storage wiped), putting the client back at entry 0 where
//                 the cluster prior re-admits it through the knowledge plane;
//   * diurnal   — cohort size and deadline pressure follow a triangle wave
//                 (exact piecewise-linear arithmetic, no libm), the fleet
//                 analogue of day/night availability and peak-hour deadlines;
//   * task
//     switches  — a cluster's workload profile changes mid-run, forcing the
//                 canonical controller back into exploration (re-admitting a
//                 prior for the NEW cluster key when a store is attached);
//   * battery   — per-client energy budgets couple rounds: training drains
//                 the budget, rounds recharge it, and a depleted client sits
//                 out until it recovers.
// An embedded FaultPlan rides along so device- and FL-level faults can hit
// the same run.
//
// Determinism contract: every churn decision is a pure hash of (scenario
// seed, churn domain, round, client id); diurnal factors and battery
// arithmetic are exact integer/double expressions of the round index.  No
// decision depends on shard or thread layout, so fleet traces under any
// scenario stay bit-identical at any --shards x --threads (the
// fleet-population harness asserts this per named scenario).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"

namespace bofl::faults {

/// Client leave/re-join process, active from `start_round` on.  Draws are
/// per (round, client) pure hashes; see fleet_engine.cpp's churn domains.
struct ChurnSpec {
  double leave_prob = 0.0;   ///< P(active client leaves) per round
  double rejoin_prob = 0.0;  ///< P(away client re-joins) per round
  /// P(state lost on re-join): the client's trajectory cursor resets to 0
  /// (cold re-admission through the cluster prior); otherwise the cursor is
  /// restored and the client resumes where it left off.
  double reset_prob = 0.0;
  std::int64_t start_round = 0;

  [[nodiscard]] bool enabled() const {
    return leave_prob > 0.0 || rejoin_prob > 0.0;
  }
  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// Triangle-wave modulation of cohort size and deadline pressure with
/// period `period_rounds`.  The wave is exact piecewise-linear arithmetic on
/// the round index (tri(r) in [-1, 1], trough at round 0, peak at half a
/// period), so factors are bit-reproducible on any platform:
///   cohort_factor(r)   = 1 + cohort_amplitude   * tri(r)   (more clients
///                        available at the peak), and
///   deadline_factor(r) = 1 - deadline_amplitude * tri(r)   (deadlines
///                        tighten when demand peaks).
struct DiurnalSpec {
  std::int64_t period_rounds = 0;  ///< 0 = disabled
  double cohort_amplitude = 0.0;   ///< in [0, 1)
  double deadline_amplitude = 0.0; ///< in [0, 1)

  [[nodiscard]] bool enabled() const {
    return period_rounds > 0 &&
           (cohort_amplitude > 0.0 || deadline_amplitude > 0.0);
  }
  /// tri(round) in [-1, 1]; requires period_rounds > 0 and round >= 0.
  [[nodiscard]] double wave(std::int64_t round) const;
  [[nodiscard]] double cohort_factor(std::int64_t round) const;
  [[nodiscard]] double deadline_factor(std::int64_t round) const;
  friend bool operator==(const DiurnalSpec&, const DiurnalSpec&) = default;
};

/// One non-stationary workload switch: at `round`, cluster `cluster`
/// (-1 = every cluster) starts training `profile` ("vit", "resnet50" or
/// "lstm").  The canonical controller restarts exploration on the new
/// workload — and, when a knowledge store is attached, re-admits the prior
/// of the NEW (device, workload) cluster key.
struct TaskSwitchSpec {
  std::int64_t round = 0;
  std::int64_t cluster = -1;
  std::string profile;

  friend bool operator==(const TaskSwitchSpec&,
                         const TaskSwitchSpec&) = default;
};

/// Per-client battery budget coupling rounds: every round recharges every
/// client by `recharge_j_per_round` (saturating at `capacity_j`); training
/// drains the client's actual round energy.  A client participates only
/// while its charge is at least `resume_fraction * capacity_j` — below
/// that it sits out (counted as battery-blocked) until recharged.
struct BatterySpec {
  double capacity_j = 0.0;  ///< 0 = disabled
  double recharge_j_per_round = 0.0;
  double resume_fraction = 0.25;  ///< in [0, 1]

  [[nodiscard]] bool enabled() const { return capacity_j > 0.0; }
  friend bool operator==(const BatterySpec&, const BatterySpec&) = default;
};

struct FleetScenario {
  /// Base seed for the churn hash domains (combined with the fleet run's
  /// own seed by the engine, like FaultPlan::seed).
  std::uint64_t seed = 0;
  std::string name;  ///< optional label, carried into telemetry
  ChurnSpec churn;
  DiurnalSpec diurnal;
  std::vector<TaskSwitchSpec> task_switches;
  BatterySpec battery;
  /// Device/FL faults riding along with the population dynamics.
  FaultPlan fault_plan;

  [[nodiscard]] bool empty() const {
    return !churn.enabled() && !diurnal.enabled() && task_switches.empty() &&
           !battery.enabled() && fault_plan.empty();
  }

  /// Throws std::invalid_argument on out-of-range fields or an unknown
  /// task-switch profile name.
  void validate() const;

  /// Compact JSON in the FaultPlan dialect; every section is emitted (with
  /// defaults made explicit) so to_json(from_json(s)) == s byte-for-byte.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static FleetScenario from_json(const std::string& text);
  [[nodiscard]] static FleetScenario from_json_file(const std::string& path);

  friend bool operator==(const FleetScenario&, const FleetScenario&) = default;
};

/// All named fleet scenarios accepted by make_fleet_scenario, in a stable
/// order ("steady" first).
[[nodiscard]] const std::vector<std::string>& fleet_scenario_names();

/// One-line description of a named fleet scenario; empty string for an
/// unknown name.
[[nodiscard]] const char* fleet_scenario_description(const std::string& name);

/// Build the named fleet-population scenario.
///
///   steady          no population dynamics; the baseline every fleet
///                   invariant compares to
///   churn           5 %/round leave, 25 %/round re-join, 30 % of re-joins
///                   lose their pace state
///   diurnal         8-round day: cohort swings +-60 %, deadlines +-30 %
///   task-switch     every cluster switches to ResNet50 at round 10
///   battery-budget  tight per-client energy budgets force clients to sit
///                   out and recover between participations
[[nodiscard]] FleetScenario make_fleet_scenario(const std::string& name,
                                                std::uint64_t seed);

}  // namespace bofl::faults
