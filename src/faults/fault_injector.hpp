// Seed-deterministic fault injection.
//
// FaultInjector owns one validated FaultPlan and answers two kinds of
// questions:
//   * Round-level (server loop): does client c drop out of round r?  How
//     late does it report?  How jittered is the round deadline?  These are
//     PURE HASH DRAWS — functions of (effective seed, spec index, round,
//     client) with no mutable state — so any call order, any thread count
//     and any subset of clients produces the same answers.
//   * Job-level (device): each client gets its own DeviceFaultChannel, a
//     JobFaultModel implementation evaluating windowed episodes on that
//     client's SimClock.  A channel is owned by exactly one client task and
//     carries only per-client state, preserving the parallel-determinism
//     contract of runtime/thread_pool.hpp.
//
// Fault *events* (episode entries, flaky reads, dropouts, ...) are not
// emitted from worker threads: device channels queue them internally and
// the round loop drains them serially in participant order, so the
// telemetry JSONL stream stays byte-identical across worker counts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "device/observer.hpp"
#include "faults/fault_plan.hpp"

namespace bofl::faults {

/// One observable fault occurrence, destined for the telemetry stream.
struct FaultEvent {
  FaultKind kind = FaultKind::kThermalStorm;
  std::int64_t round = -1;   ///< -1 when not round-scoped (device episodes)
  std::int64_t client = -1;  ///< -1 for fleet-wide effects (deadline jitter)
  double time_s = 0.0;       ///< owning clock's simulated time
  double magnitude = 1.0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Append `event` to the global telemetry stream (event name "fault") and
/// bump the faults.events counter.  Call only from serial sections.
void emit_fault_event(const FaultEvent& event);

/// Per-client device fault channel.  Implements the observer's JobFaultModel
/// seam; additionally answers pessimistic what-if queries for feasibility
/// checks and queues events for the serial drain.
class DeviceFaultChannel final : public device::JobFaultModel {
 public:
  struct IndexedSpec {
    FaultSpec spec;
    std::size_t index = 0;  ///< position in the owning plan (hash stream id)
  };

  DeviceFaultChannel(std::vector<IndexedSpec> specs, std::uint64_t seed,
                     std::int64_t client);

  [[nodiscard]] JobEffect job_effect(double now_s) override;
  [[nodiscard]] double measurement_distortion(double now_s) override;

  /// Worst combined effect any job could see in the window [t0_s, t1_s):
  /// product of every overlapping slowdown episode's latency multiplier and
  /// the tightest overlapping DVFS cap.  Pure (no draws consumed) — safe to
  /// call from feasibility checks without perturbing the fault stream.
  struct WorstCase {
    double latency_multiplier = 1.0;
    double config_cap = 1.0;
  };
  [[nodiscard]] WorstCase worst_case_in(double t0_s, double t1_s) const;

  /// Move out the events queued since the last drain, stamping them with
  /// `round`.  Called serially by the round loop, in participant order.
  [[nodiscard]] std::vector<FaultEvent> drain_events(std::int64_t round);

  [[nodiscard]] std::int64_t client() const { return client_; }

 private:
  std::vector<IndexedSpec> specs_;
  std::uint64_t seed_ = 0;
  std::int64_t client_ = -1;
  /// Last episode index seen per spec (-1 = none); episode *entries* become
  /// events, per-job re-queries inside the same episode do not.
  std::vector<std::int64_t> last_episode_;
  /// Monotone counter for sensor-dropout draws.  Channel-private, advanced
  /// only by this client's jobs, hence deterministic.
  std::uint64_t read_draws_ = 0;
  std::vector<FaultEvent> pending_;
};

class FaultInjector {
 public:
  /// `plan` is validated on construction.  `run_seed` is the simulation's
  /// own seed; fault streams derive from stream_seed(plan.seed, run_seed)
  /// so distinct runs of one plan decorrelate while (plan, run) pairs
  /// reproduce exactly.
  FaultInjector(FaultPlan plan, std::uint64_t run_seed);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool empty() const { return plan_.empty(); }
  [[nodiscard]] std::uint64_t effective_seed() const { return seed_; }

  /// Device channel for one client.  The caller owns the channel and must
  /// not share it across clients (see JobFaultModel contract).
  [[nodiscard]] std::unique_ptr<DeviceFaultChannel> make_device_channel(
      std::int64_t client) const;

  // --- Round-level pure queries (stateless; see file comment). -----------

  /// Does `client` vanish from round `round` before training?
  [[nodiscard]] bool client_drops(std::int64_t round,
                                  std::int64_t client) const;

  /// Straggler report-delay factor: >= 1; the report is delayed by
  /// (factor - 1) x the round deadline.  1.0 = on time.
  [[nodiscard]] double straggler_factor(std::int64_t round,
                                        std::int64_t client) const;

  /// Round deadline multiplier (deadline jitter); 1.0 = undisturbed.
  [[nodiscard]] double deadline_jitter(std::int64_t round) const;

 private:
  FaultPlan plan_;
  std::uint64_t seed_ = 0;
};

}  // namespace bofl::faults
