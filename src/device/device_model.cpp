#include "device/device_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::device {

double UnitPowerModel::voltage(double rel) const {
  BOFL_REQUIRE(rel >= 0.0 && rel <= 1.0, "relative frequency must be in [0,1]");
  return v_min + (v_max - v_min) * std::pow(rel, gamma);
}

DeviceModel::DeviceModel(DeviceSpec spec, DvfsSpace space)
    : spec_(std::move(spec)), space_(std::move(space)) {
  BOFL_REQUIRE(spec_.cpu_scale > 0.0 && spec_.mem_scale > 0.0,
               "throughput scales must be positive");
  BOFL_REQUIRE(spec_.idle_power_watts >= 0.0,
               "idle power must be non-negative");
}

double DeviceModel::gpu_scale_for(WorkloadClass c) const {
  const auto it = spec_.gpu_class_scale.find(c);
  BOFL_REQUIRE(it != spec_.gpu_class_scale.end(),
               "device has no GPU scale for this workload class");
  return it->second;
}

DeviceModel::BusyTimes DeviceModel::busy_times(const WorkloadProfile& profile,
                                               const DvfsConfig& config) const {
  BusyTimes t;
  t.cpu = profile.cpu_work /
          (space_.cpu_freq(config).value() * spec_.cpu_scale);
  t.gpu = profile.gpu_work / (space_.gpu_freq(config).value() *
                              gpu_scale_for(profile.workload_class));
  t.mem = profile.mem_work /
          (space_.mem_freq(config).value() * spec_.mem_scale);
  const double serial = t.cpu + t.gpu + t.mem;
  const double bottleneck = std::max({t.cpu, t.gpu, t.mem});
  const double alpha = profile.serial_fraction;
  t.total_latency = alpha * serial + (1.0 - alpha) * bottleneck;
  return t;
}

Seconds DeviceModel::latency(const WorkloadProfile& profile,
                             const DvfsConfig& config) const {
  return Seconds{busy_times(profile, config).total_latency};
}

Watts DeviceModel::average_power(const WorkloadProfile& profile,
                                 const DvfsConfig& config) const {
  const BusyTimes t = busy_times(profile, config);
  auto unit_power = [&](const UnitPowerModel& unit, const FrequencyTable& table,
                        std::size_t step, double busy, double intensity) {
    const double rel = table.normalized(step);
    const double volt = unit.voltage(rel);
    const double utilization = busy / t.total_latency;
    return unit.kappa * intensity * table.at(step).value() * volt * volt *
           utilization;
  };
  const double p =
      spec_.idle_power_watts +
      unit_power(spec_.cpu_power, space_.cpu_table(), config.cpu, t.cpu,
                 profile.cpu_power_intensity) +
      unit_power(spec_.gpu_power, space_.gpu_table(), config.gpu, t.gpu, 1.0) +
      unit_power(spec_.mem_power, space_.mem_table(), config.mem, t.mem, 1.0);
  return Watts{p};
}

Joules DeviceModel::energy(const WorkloadProfile& profile,
                           const DvfsConfig& config) const {
  return average_power(profile, config) * latency(profile, config);
}

Seconds DeviceModel::round_t_min(const WorkloadProfile& profile,
                                 std::int64_t num_jobs) const {
  BOFL_REQUIRE(num_jobs >= 0, "job count must be non-negative");
  return latency(profile, space_.max_config()) *
         static_cast<double>(num_jobs);
}

FlatPerfTable FlatPerfTable::build(const DeviceModel& model,
                                   const WorkloadProfile& profile) {
  const DvfsSpace& space = model.space();
  FlatPerfTable table;
  table.latency_s.reserve(space.size());
  table.energy_j.reserve(space.size());
  table.power_w.reserve(space.size());
  for (std::size_t flat = 0; flat < space.size(); ++flat) {
    const DvfsConfig config = space.from_flat(flat);
    table.latency_s.push_back(model.latency(profile, config).value());
    table.power_w.push_back(model.average_power(profile, config).value());
    table.energy_j.push_back(model.energy(profile, config).value());
  }
  if (telemetry::Registry* reg = telemetry::global_registry()) {
    reg->counter("device.flat_table_builds").add(1);
  }
  return table;
}

DeviceModel jetson_agx() {
  DeviceSpec spec;
  spec.name = "jetson-agx";
  spec.cpu_scale = 1.0;
  spec.mem_scale = 1.0;
  // The AGX is the calibration reference: unit GPU throughput per class.
  spec.gpu_class_scale = {{WorkloadClass::kTransformer, 1.0},
                          {WorkloadClass::kCnn, 1.0},
                          {WorkloadClass::kRnn, 1.0}};
  spec.idle_power_watts = 4.5;
  spec.cpu_power = {0.60, 1.10, 1.4, 7.28};
  spec.gpu_power = {0.60, 1.10, 1.4, 7.84};
  spec.mem_power = {0.60, 1.10, 1.4, 3.02};
  DvfsSpace space{FrequencyTable::linear(0.4224, 2.2656, 25),
                  FrequencyTable::linear(0.1147, 1.3770, 14),
                  FrequencyTable::linear(0.2040, 2.1330, 6)};
  return {std::move(spec), std::move(space)};
}

DeviceModel jetson_tx2() {
  DeviceSpec spec;
  spec.name = "jetson-tx2";
  spec.cpu_scale = 0.45;
  spec.mem_scale = 0.60;
  // Pascal-generation GPU: strongest penalty on convolutions (no tensor
  // cores), mildest on the host-bound RNN — reproduces Fig. 5's
  // model-dependent speedups.
  spec.gpu_class_scale = {{WorkloadClass::kTransformer, 0.43},
                          {WorkloadClass::kCnn, 0.31},
                          {WorkloadClass::kRnn, 0.55}};
  spec.idle_power_watts = 3.0;
  spec.cpu_power = {0.70, 1.15, 1.4, 4.13};
  spec.gpu_power = {0.70, 1.15, 1.4, 3.33};
  spec.mem_power = {0.70, 1.15, 1.4, 1.38};
  DvfsSpace space{FrequencyTable::linear(0.3456, 2.0350, 12),
                  FrequencyTable::linear(0.1147, 1.3005, 13),
                  FrequencyTable::linear(0.4080, 1.8660, 6)};
  return {std::move(spec), std::move(space)};
}

DeviceModel pixel_phone() {
  DeviceSpec spec;
  spec.name = "pixel-phone";
  // Phone-class SoC: big-core cluster roughly half the AGX's per-clock
  // throughput, a small mobile GPU (worst on convolutions — no tensor
  // cores, narrow memory bus) and LPDDR with about half the controller
  // throughput.  Low rail voltages and small kappas give the watt-level
  // power envelope of a handset; race-to-idle barely pays because idle
  // draw is tiny, so the energy-optimal configs sit lower than on Jetson.
  spec.cpu_scale = 0.55;
  spec.mem_scale = 0.50;
  spec.gpu_class_scale = {{WorkloadClass::kTransformer, 0.18},
                          {WorkloadClass::kCnn, 0.15},
                          {WorkloadClass::kRnn, 0.35}};
  spec.idle_power_watts = 0.4;
  spec.cpu_power = {0.55, 1.20, 1.5, 2.20};
  spec.gpu_power = {0.55, 1.15, 1.5, 1.60};
  spec.mem_power = {0.55, 1.10, 1.4, 0.90};
  DvfsSpace space{FrequencyTable::linear(0.3000, 2.8020, 16),
                  FrequencyTable::linear(0.1510, 0.9500, 9),
                  FrequencyTable::linear(0.5470, 2.0920, 4)};
  return {std::move(spec), std::move(space)};
}

DeviceModel edge_server() {
  DeviceSpec spec;
  spec.name = "edge-server";
  // Server-class box with a discrete accelerator: more than double the
  // per-clock CPU/memory throughput and a GPU that crushes dense
  // tensor/conv work but helps the host-serialized RNN far less.  Tens of
  // watts of idle draw make race-to-idle dominant — the energy-optimal
  // configs sit near x_max, the opposite corner from the phone.
  spec.cpu_scale = 2.20;
  spec.mem_scale = 2.00;
  spec.gpu_class_scale = {{WorkloadClass::kTransformer, 6.0},
                          {WorkloadClass::kCnn, 6.5},
                          {WorkloadClass::kRnn, 2.5}};
  spec.idle_power_watts = 45.0;
  spec.cpu_power = {0.85, 1.00, 1.3, 15.0};
  spec.gpu_power = {0.85, 1.00, 1.3, 24.0};
  spec.mem_power = {0.85, 1.00, 1.3, 6.00};
  DvfsSpace space{FrequencyTable::linear(1.2000, 3.4000, 16),
                  FrequencyTable::linear(0.3000, 1.8000, 12),
                  FrequencyTable::linear(0.8000, 3.2000, 4)};
  return {std::move(spec), std::move(space)};
}

}  // namespace bofl::device
