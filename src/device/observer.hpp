// Simulated time, power sensing and performance observation.
//
// SimClock is the single source of truth for time in the simulation; every
// executed job advances it by the job's *true* latency.  Measurements,
// however, pass through noise models:
//   * PowerSensor (the INA3221 stand-in) returns energy readings with a
//     relative error that shrinks with the measurement duration — short
//     reads catch the rails before the voltage settles, which is exactly
//     why the paper introduces the reference measurement duration τ (§4.2).
//   * PerformanceObserver runs batches of jobs under one configuration,
//     advances the clock, and reports per-job latency and energy readings
//     (latency via the CUDA-event analogue: accurate, small noise).
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "device/device_model.hpp"

namespace bofl::device {

/// Deterministic simulated wall clock.
class SimClock {
 public:
  [[nodiscard]] Seconds now() const { return now_; }
  void advance(Seconds delta);

 private:
  Seconds now_{0.0};
};

/// First-order RC thermal model with frequency throttling, mirroring the
/// Jetson's transparent thermal management.  When the die temperature
/// crosses throttle_temp_c, the hardware caps every DVFS axis at
/// throttle_cap * (steps - 1) until it cools below the threshold again;
/// the running software just observes slower jobs.
struct ThermalParams {
  double ambient_c = 25.0;
  double thermal_resistance_c_per_w = 1.4;  ///< steady ΔT per watt
  double time_constant_s = 90.0;            ///< RC time constant
  double throttle_temp_c = 85.0;
  double throttle_cap = 0.6;                ///< axis-index cap fraction
};

/// Disturbance model: measurement noise plus optional execution-level
/// disturbances — latency spikes from background OS activity and
/// transparent thermal throttling.
struct NoiseModel {
  /// Coefficient of variation of latency readings at the reference
  /// duration (CUDA events are accurate; default 1 %).
  double latency_cv = 0.01;
  /// Coefficient of variation of energy readings at the reference duration.
  double energy_cv = 0.03;
  /// Measurement duration at which the CVs above hold [s].
  double reference_duration = 5.0;
  /// Noise growth cap for very short measurements (CV multiplier bound).
  double max_amplification = 4.0;

  /// Failure injection: each job independently suffers a latency spike
  /// with this probability (preempting daemons, page faults, GC, ...).
  double spike_probability = 0.0;
  /// A spiked job takes this multiple of its nominal latency (and, with the
  /// device held busy, the proportional energy).
  double spike_magnitude = 3.0;
  /// Thermal throttling; disabled when unset.
  std::optional<ThermalParams> thermal;

  /// Effective CV for a measurement spanning `duration` seconds: the base
  /// CV amplified by sqrt(reference/duration), capped.
  [[nodiscard]] double effective_cv(double base_cv, double duration) const;
};

/// Per-job execution faults injected by an external fault layer
/// (src/faults): co-runner interference, throttling storms, platform DVFS
/// clamping, and flaky measurement reads.  The observer queries one model
/// per job and per measurement window.
///
/// Determinism contract: implementations must be pure functions of the
/// simulated time they are handed plus their own private state.  A model
/// instance is owned by exactly one client/controller (never shared across
/// workers), so fault sequences are bit-identical for any thread count.
class JobFaultModel {
 public:
  virtual ~JobFaultModel() = default;

  /// What a fault does to one job's execution.
  struct JobEffect {
    double latency_multiplier = 1.0;  ///< co-running load, storm slowdown
    double energy_multiplier = 1.0;   ///< the device is held busy meanwhile
    /// Platform DVFS clamp: the governor rejects the requested config and
    /// runs clamp_config(space, requested, config_cap) instead.  1 = none.
    double config_cap = 1.0;
  };

  /// Effect on a job starting at simulated time `now_s` [s].
  [[nodiscard]] virtual JobEffect job_effect(double now_s) = 0;

  /// Multiplicative distortion of the *measured* readings (latency and
  /// energy) of a measurement window ending at `now_s`; 1.0 = healthy read.
  /// Models transient sysfs/INA read failures — the true execution is
  /// unaffected, only the reported numbers are garbage.  May advance the
  /// model's private draw state.
  [[nodiscard]] virtual double measurement_distortion(double now_s) = 0;
};

/// Evolving die temperature.
class ThermalState {
 public:
  explicit ThermalState(const ThermalParams& params);

  /// Integrate `duration` seconds at `power` draw.
  void advance(Watts power, Seconds duration);

  [[nodiscard]] double temperature_c() const { return temperature_c_; }
  [[nodiscard]] bool throttled() const;

  /// The configuration the hardware actually runs when `requested` is
  /// asked for at the current temperature.
  [[nodiscard]] DvfsConfig effective_config(const DvfsSpace& space,
                                            const DvfsConfig& requested) const;

 private:
  ThermalParams params_;
  double temperature_c_;
};

/// INA3221 stand-in: converts true energy into a noisy reading.
class PowerSensor {
 public:
  PowerSensor(NoiseModel noise, Rng rng);

  /// A noisy energy reading for a measurement window of `duration` whose
  /// true consumed energy is `true_energy`.
  [[nodiscard]] Joules read_energy(Joules true_energy, Seconds duration);

 private:
  NoiseModel noise_;
  Rng rng_;
};

/// Result of running a batch of jobs under one configuration.
struct Measurement {
  std::int64_t jobs = 0;
  Seconds true_duration{0.0};      ///< exact wall time consumed
  Seconds measured_latency{0.0};   ///< noisy per-job latency reading
  Joules measured_energy{0.0};     ///< noisy per-job energy reading
  Joules true_energy{0.0};         ///< exact energy consumed (accounting)
};

/// Runs jobs on the simulated device and reports noisy measurements.
class PerformanceObserver {
 public:
  /// `model` must outlive the observer.
  PerformanceObserver(const DeviceModel& model, NoiseModel noise,
                      std::uint64_t seed);

  /// Execute `count` jobs of `profile` under `config`: advances `clock` by
  /// the true total latency and returns per-job readings.
  Measurement run_jobs(const WorkloadProfile& profile,
                       const DvfsConfig& config, std::int64_t count,
                       SimClock& clock);

  /// Enable the thermal model; the die starts at ambient temperature.
  void enable_thermal(const ThermalParams& params);
  [[nodiscard]] const ThermalState* thermal() const {
    return thermal_ ? &*thermal_ : nullptr;
  }

  /// Install (or clear, with nullptr) a fault model consulted per job and
  /// per measurement.  Non-owning; `faults` must outlive the observer and
  /// must not be shared with any other observer (see JobFaultModel).
  void set_fault_model(JobFaultModel* faults) { faults_ = faults; }
  [[nodiscard]] JobFaultModel* fault_model() const { return faults_; }

  /// Escape hatch: false routes every job cost through the analytical
  /// DeviceModel calls instead of the flat config-indexed tables (the
  /// default).  Table reads are bit-identical to model calls by
  /// construction — the differential tests assert it — so this only exists
  /// for those tests and for debugging.
  void set_use_flat_tables(bool use) { use_flat_tables_ = use; }
  [[nodiscard]] bool use_flat_tables() const { return use_flat_tables_; }

  [[nodiscard]] const DeviceModel& model() const { return model_; }

 private:
  /// The SoA cost table for `profile`, rebuilt only when the profile
  /// changes (each controller drives one workload, so in practice this
  /// builds once and then every job is three array reads).
  [[nodiscard]] const FlatPerfTable& flat_table_for(
      const WorkloadProfile& profile);

  const DeviceModel& model_;
  NoiseModel noise_;
  Rng rng_;
  PowerSensor sensor_;
  std::optional<ThermalState> thermal_;
  JobFaultModel* faults_ = nullptr;
  bool use_flat_tables_ = true;
  std::optional<WorkloadProfile> flat_profile_;  ///< profile flat_table_ is for
  FlatPerfTable flat_table_;
};

}  // namespace bofl::device
