#include "device/frequency.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace bofl::device {

FrequencyTable FrequencyTable::linear(double min_ghz, double max_ghz,
                                      std::size_t steps) {
  BOFL_REQUIRE(steps >= 1, "a frequency table needs at least one step");
  BOFL_REQUIRE(min_ghz > 0.0 && max_ghz >= min_ghz,
               "need 0 < min_ghz <= max_ghz");
  std::vector<GigaHertz> freqs;
  freqs.reserve(steps);
  if (steps == 1) {
    freqs.emplace_back(max_ghz);
  } else {
    const double delta = (max_ghz - min_ghz) / static_cast<double>(steps - 1);
    for (std::size_t i = 0; i < steps; ++i) {
      freqs.emplace_back(min_ghz + delta * static_cast<double>(i));
    }
  }
  return FrequencyTable(std::move(freqs));
}

FrequencyTable::FrequencyTable(std::vector<GigaHertz> frequencies)
    : frequencies_(std::move(frequencies)) {
  BOFL_REQUIRE(!frequencies_.empty(), "frequency table cannot be empty");
  for (std::size_t i = 1; i < frequencies_.size(); ++i) {
    BOFL_REQUIRE(frequencies_[i - 1] < frequencies_[i],
                 "frequency table must be strictly increasing");
  }
  BOFL_REQUIRE(frequencies_.front().value() > 0.0,
               "frequencies must be positive");
}

GigaHertz FrequencyTable::at(std::size_t index) const {
  BOFL_REQUIRE(index < frequencies_.size(), "frequency step out of range");
  return frequencies_[index];
}

std::size_t FrequencyTable::nearest_index(GigaHertz freq) const {
  std::size_t best = 0;
  double best_distance = std::abs(frequencies_[0].value() - freq.value());
  for (std::size_t i = 1; i < frequencies_.size(); ++i) {
    const double distance = std::abs(frequencies_[i].value() - freq.value());
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

double FrequencyTable::normalized(std::size_t index) const {
  const double lo = min().value();
  const double hi = max().value();
  if (hi == lo) {
    return 1.0;
  }
  return (at(index).value() - lo) / (hi - lo);
}

DvfsSpace::DvfsSpace(FrequencyTable cpu, FrequencyTable gpu,
                     FrequencyTable mem)
    : cpu_(std::move(cpu)), gpu_(std::move(gpu)), mem_(std::move(mem)) {}

std::size_t DvfsSpace::size() const {
  return cpu_.size() * gpu_.size() * mem_.size();
}

std::size_t DvfsSpace::to_flat(const DvfsConfig& config) const {
  BOFL_REQUIRE(config.cpu < cpu_.size() && config.gpu < gpu_.size() &&
                   config.mem < mem_.size(),
               "DVFS configuration out of range");
  return (config.cpu * gpu_.size() + config.gpu) * mem_.size() + config.mem;
}

DvfsConfig DvfsSpace::from_flat(std::size_t flat) const {
  BOFL_REQUIRE(flat < size(), "flat DVFS index out of range");
  DvfsConfig config;
  config.mem = flat % mem_.size();
  flat /= mem_.size();
  config.gpu = flat % gpu_.size();
  config.cpu = flat / gpu_.size();
  return config;
}

GigaHertz DvfsSpace::cpu_freq(const DvfsConfig& c) const {
  return cpu_.at(c.cpu);
}
GigaHertz DvfsSpace::gpu_freq(const DvfsConfig& c) const {
  return gpu_.at(c.gpu);
}
GigaHertz DvfsSpace::mem_freq(const DvfsConfig& c) const {
  return mem_.at(c.mem);
}

DvfsConfig DvfsSpace::max_config() const {
  return {cpu_.size() - 1, gpu_.size() - 1, mem_.size() - 1};
}

DvfsConfig clamp_config(const DvfsSpace& space, const DvfsConfig& config,
                        double cap) {
  BOFL_REQUIRE(cap > 0.0 && cap <= 1.0, "config cap must be in (0, 1]");
  const auto axis = [cap](std::size_t index, std::size_t table_size) {
    const auto limit = static_cast<std::size_t>(
        cap * static_cast<double>(table_size - 1));
    return std::min(index, limit);
  };
  return {axis(config.cpu, space.cpu_table().size()),
          axis(config.gpu, space.gpu_table().size()),
          axis(config.mem, space.mem_table().size())};
}

linalg::Vector DvfsSpace::normalized(const DvfsConfig& config) const {
  return {cpu_.normalized(config.cpu), gpu_.normalized(config.gpu),
          mem_.normalized(config.mem)};
}

std::vector<linalg::Vector> DvfsSpace::all_normalized() const {
  std::vector<linalg::Vector> points;
  points.reserve(size());
  for (std::size_t flat = 0; flat < size(); ++flat) {
    points.push_back(normalized(from_flat(flat)));
  }
  return points;
}

std::string DvfsSpace::describe(const DvfsConfig& config) const {
  std::ostringstream os;
  os.precision(3);
  os << "cpu=" << cpu_freq(config) << " gpu=" << gpu_freq(config)
     << " mem=" << mem_freq(config);
  return os.str();
}

}  // namespace bofl::device
