#include "device/sysfs.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace bofl::device {

namespace {

constexpr double kKiloHertzPerGigaHertz = 1e6;  // GHz -> kHz
constexpr double kHertzPerGigaHertz = 1e9;      // GHz -> Hz

std::string format_integer(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  return buffer;
}

double parse_number(const std::string& text) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    BOFL_ASSERT(false, "malformed sysfs file content: " + text);
  }
}

}  // namespace

void SysfsTree::write(const std::string& path, const std::string& value) {
  files_[path] = value;
}

const std::string& SysfsTree::read(const std::string& path) const {
  const auto it = files_.find(path);
  BOFL_REQUIRE(it != files_.end(), "no such sysfs file: " + path);
  return it->second;
}

bool SysfsTree::exists(const std::string& path) const {
  return files_.contains(path);
}

std::vector<std::string> SysfsTree::paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, value] : files_) {
    out.push_back(path);
  }
  return out;
}

void SysfsTree::materialize(const std::string& root) const {
  namespace fs = std::filesystem;
  BOFL_REQUIRE(!root.empty(), "materialize needs a root directory");
  for (const auto& [path, value] : files_) {
    const fs::path target = fs::path(root + path);
    fs::create_directories(target.parent_path());
    std::ofstream out(target);
    BOFL_REQUIRE(out.is_open(), "cannot write sysfs file: " + target.string());
    out << value;
  }
}

SysfsTree SysfsTree::load_from(const std::string& root) {
  namespace fs = std::filesystem;
  BOFL_REQUIRE(fs::is_directory(root), "no such directory: " + root);
  SysfsTree tree;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream content;
    content << in.rdbuf();
    const std::string relative =
        "/" + fs::relative(entry.path(), root).generic_string();
    tree.write(relative, content.str());
  }
  return tree;
}

SysfsDvfsController::SysfsDvfsController(const DvfsSpace& space)
    : space_(space) {
  apply(space_.max_config());
}

void SysfsDvfsController::pin(const char* min_path, const char* max_path,
                              const char* cur_path, double value) {
  const std::string text = format_integer(value);
  // Kernel ordering quirk: raising min above the current max is rejected on
  // real systems, so write max first, then min, like production DVFS tools.
  tree_.write(max_path, text);
  tree_.write(min_path, text);
  tree_.write(cur_path, text);
}

void SysfsDvfsController::apply(const DvfsConfig& config) {
  pin(kCpuMinPath, kCpuMaxPath, kCpuCurPath,
      space_.cpu_freq(config).value() * kKiloHertzPerGigaHertz);
  pin(kGpuMinPath, kGpuMaxPath, kGpuCurPath,
      space_.gpu_freq(config).value() * kHertzPerGigaHertz);
  pin(kMemMinPath, kMemMaxPath, kMemCurPath,
      space_.mem_freq(config).value() * kHertzPerGigaHertz);
}

void SysfsDvfsController::request_raw(double cpu_khz, double gpu_hz,
                                      double mem_hz) {
  BOFL_REQUIRE(cpu_khz > 0.0 && gpu_hz > 0.0 && mem_hz > 0.0,
               "requested rates must be positive");
  // Snap to the nearest supported step, then pin as usual.
  DvfsConfig snapped;
  snapped.cpu = space_.cpu_table().nearest_index(
      GigaHertz{cpu_khz / kKiloHertzPerGigaHertz});
  snapped.gpu = space_.gpu_table().nearest_index(
      GigaHertz{gpu_hz / kHertzPerGigaHertz});
  snapped.mem = space_.mem_table().nearest_index(
      GigaHertz{mem_hz / kHertzPerGigaHertz});
  apply(snapped);
}

DvfsConfig SysfsDvfsController::current() const {
  DvfsConfig config;
  config.cpu = space_.cpu_table().nearest_index(
      GigaHertz{parse_number(tree_.read(kCpuCurPath)) /
                kKiloHertzPerGigaHertz});
  config.gpu = space_.gpu_table().nearest_index(
      GigaHertz{parse_number(tree_.read(kGpuCurPath)) / kHertzPerGigaHertz});
  config.mem = space_.mem_table().nearest_index(
      GigaHertz{parse_number(tree_.read(kMemCurPath)) / kHertzPerGigaHertz});
  return config;
}

}  // namespace bofl::device
