// Workload profiles: the hardware footprint of training one minibatch.
//
// The paper trains ViT, ResNet50 and LSTM with PyTorch; what the pace
// controller sees is only how one minibatch ("job") loads the CPU, GPU and
// memory controller.  A WorkloadProfile captures that footprint in
// device-independent units:
//   * cpu_work  [GHz·s]  — cycles of host-side work (data loading, kernel
//                          launches, optimizer bookkeeping), expressed as
//                          seconds of work at 1 GHz on the reference device,
//   * gpu_work  [GHz·s]  — accelerator cycles for forward/backward,
//   * mem_work  [GHz·s]  — memory-controller cycles for tensor traffic,
//   * serial_fraction    — the share of the three components that cannot be
//                          overlapped (the rest pipelines; the job latency
//                          interpolates between sum and max).
// The three calibrated profiles below reproduce the qualitative behaviour
// of the paper's Figures 3–5: ViT and ResNet50 are GPU/memory bound (flat
// latency in CPU frequency), LSTM is CPU bound (latency halves from 0.6 to
// 1.7 GHz), and energy responds non-monotonically.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bofl::device {

/// Architecture class of the model; newer GPU generations accelerate the
/// classes differently (the paper's "hardware dependence", Fig. 5).
enum class WorkloadClass {
  kTransformer,
  kCnn,
  kRnn,
};

[[nodiscard]] const char* to_string(WorkloadClass c);

struct WorkloadProfile {
  std::string name;
  WorkloadClass workload_class = WorkloadClass::kCnn;
  double cpu_work = 0.0;        ///< GHz·s per minibatch
  double gpu_work = 0.0;        ///< GHz·s per minibatch
  double mem_work = 0.0;        ///< GHz·s per minibatch
  double serial_fraction = 0.2; ///< in [0, 1]
  /// Power drawn per CPU cycle relative to a compute-dense workload; the
  /// LSTM's host loop is memory-stall heavy and burns less per cycle.
  double cpu_power_intensity = 1.0;

  /// Memberwise equality (exact doubles) — lets FlatPerfTable caches detect
  /// a profile switch.
  [[nodiscard]] friend bool operator==(const WorkloadProfile&,
                                       const WorkloadProfile&) = default;
};

/// CIFAR10-ViT (minibatch 32): attention-heavy, GPU bound with a visible
/// CPU floor.
[[nodiscard]] WorkloadProfile vit_profile();

/// ImageNet-ResNet50 (minibatch 8): convolution-heavy, GPU + memory bound.
[[nodiscard]] WorkloadProfile resnet50_profile();

/// IMDB-LSTM (minibatch 8): recurrent, host-serialized, CPU bound.
[[nodiscard]] WorkloadProfile lstm_profile();

/// All three paper workloads, in the paper's order.
[[nodiscard]] std::vector<WorkloadProfile> paper_profiles();

/// Look up a paper workload by its profile name ("vit", "resnet50",
/// "lstm"); nullopt for anything else.  This is the name declarative specs
/// (fleet scenarios, CLI mixes) use to reference a workload.
[[nodiscard]] std::optional<WorkloadProfile> profile_from_string(
    std::string_view name);

}  // namespace bofl::device
