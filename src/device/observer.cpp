#include "device/observer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::device {

void SimClock::advance(Seconds delta) {
  BOFL_REQUIRE(delta.value() >= 0.0, "time cannot move backwards");
  now_ += delta;
}

double NoiseModel::effective_cv(double base_cv, double duration) const {
  BOFL_REQUIRE(duration > 0.0, "measurement duration must be positive");
  const double amplification = std::min(
      std::sqrt(reference_duration / duration), max_amplification);
  return base_cv * std::max(amplification, 1.0);
}

ThermalState::ThermalState(const ThermalParams& params)
    : params_(params), temperature_c_(params.ambient_c) {
  BOFL_REQUIRE(params.time_constant_s > 0.0,
               "thermal time constant must be positive");
  BOFL_REQUIRE(params.throttle_cap > 0.0 && params.throttle_cap <= 1.0,
               "throttle cap must be in (0, 1]");
  BOFL_REQUIRE(params.thermal_resistance_c_per_w >= 0.0,
               "thermal resistance must be non-negative");
}

void ThermalState::advance(Watts power, Seconds duration) {
  BOFL_REQUIRE(duration.value() >= 0.0, "duration must be non-negative");
  // First-order RC: T' = T_inf + (T - T_inf) * exp(-dt / tau).
  const double steady =
      params_.ambient_c + params_.thermal_resistance_c_per_w * power.value();
  const double decay = std::exp(-duration.value() / params_.time_constant_s);
  temperature_c_ = steady + (temperature_c_ - steady) * decay;
}

bool ThermalState::throttled() const {
  return temperature_c_ >= params_.throttle_temp_c;
}

DvfsConfig ThermalState::effective_config(const DvfsSpace& space,
                                          const DvfsConfig& requested) const {
  if (!throttled()) {
    return requested;
  }
  return clamp_config(space, requested, params_.throttle_cap);
}

PowerSensor::PowerSensor(NoiseModel noise, Rng rng)
    : noise_(noise), rng_(rng) {}

Joules PowerSensor::read_energy(Joules true_energy, Seconds duration) {
  const double cv = noise_.effective_cv(noise_.energy_cv, duration.value());
  return Joules{true_energy.value() * rng_.lognormal_mean1(cv)};
}

PerformanceObserver::PerformanceObserver(const DeviceModel& model,
                                         NoiseModel noise, std::uint64_t seed)
    : model_(model), noise_(noise), rng_(seed), sensor_(noise, rng_.split()) {
  BOFL_REQUIRE(noise.spike_probability >= 0.0 && noise.spike_probability < 1.0,
               "spike probability must be in [0, 1)");
  BOFL_REQUIRE(noise.spike_magnitude >= 1.0,
               "a latency spike cannot speed a job up");
  if (noise_.thermal) {
    thermal_.emplace(*noise_.thermal);
  }
}

void PerformanceObserver::enable_thermal(const ThermalParams& params) {
  thermal_.emplace(params);
}

const FlatPerfTable& PerformanceObserver::flat_table_for(
    const WorkloadProfile& profile) {
  if (!flat_profile_ || !(*flat_profile_ == profile)) {
    flat_table_ = FlatPerfTable::build(model_, profile);
    flat_profile_ = profile;
  }
  return flat_table_;
}

Measurement PerformanceObserver::run_jobs(const WorkloadProfile& profile,
                                          const DvfsConfig& config,
                                          std::int64_t count,
                                          SimClock& clock) {
  BOFL_REQUIRE(count > 0, "must run at least one job");
  Measurement m;
  m.jobs = count;

  // Per-job costs come from the flat SoA table (three array reads per
  // config) unless the escape hatch routes them through the analytical
  // model; the two are bit-identical (see FlatPerfTable).
  const FlatPerfTable* table =
      use_flat_tables_ ? &flat_table_for(profile) : nullptr;
  const DvfsSpace& space = model_.space();

  const bool job_level = noise_.spike_probability > 0.0 ||
                         thermal_.has_value() || faults_ != nullptr;
  if (!job_level) {
    // Fast path: every job is identical.
    const std::size_t flat = space.to_flat(config);
    const Seconds per_job_latency =
        table != nullptr ? Seconds{table->latency_s[flat]}
                         : model_.latency(profile, config);
    const Joules per_job_energy = table != nullptr
                                      ? Joules{table->energy_j[flat]}
                                      : model_.energy(profile, config);
    const auto jobs = static_cast<double>(count);
    m.true_duration = per_job_latency * jobs;
    m.true_energy = per_job_energy * jobs;
  } else {
    // Disturbed path: spikes, thermal throttling and injected faults vary
    // per job.  Job start times are the clock's value plus the duration
    // accumulated so far in this batch (the clock itself only advances
    // once, after the batch).
    std::uint64_t throttled_jobs = 0;
    std::uint64_t spiked_jobs = 0;
    std::uint64_t faulted_jobs = 0;
    for (std::int64_t j = 0; j < count; ++j) {
      const double now = clock.now().value() + m.true_duration.value();
      JobFaultModel::JobEffect effect;
      if (faults_ != nullptr) {
        effect = faults_->job_effect(now);
      }
      DvfsConfig effective = config;
      if (effect.config_cap < 1.0) {
        // The platform governor rejects the requested point (fault seam).
        effective = clamp_config(space, effective, effect.config_cap);
      }
      if (thermal_) {
        effective = thermal_->effective_config(space, effective);
        if (thermal_->throttled()) {
          ++throttled_jobs;
        }
      }
      const std::size_t effective_flat = space.to_flat(effective);
      const double base_latency =
          table != nullptr ? table->latency_s[effective_flat]
                           : model_.latency(profile, effective).value();
      const double base_energy =
          table != nullptr ? table->energy_j[effective_flat]
                           : model_.energy(profile, effective).value();
      double latency = base_latency * effect.latency_multiplier;
      double energy = base_energy * effect.energy_multiplier;
      if (effect.latency_multiplier != 1.0 || effect.energy_multiplier != 1.0 ||
          effect.config_cap < 1.0) {
        ++faulted_jobs;
      }
      if (noise_.spike_probability > 0.0 &&
          rng_.bernoulli(noise_.spike_probability)) {
        // The device stays busy for the whole spike.
        latency *= noise_.spike_magnitude;
        energy *= noise_.spike_magnitude;
        ++spiked_jobs;
      }
      m.true_duration += Seconds{latency};
      m.true_energy += Joules{energy};
      if (thermal_) {
        thermal_->advance(Joules{energy} / Seconds{latency},
                          Seconds{latency});
      }
    }
    if (throttled_jobs > 0 || spiked_jobs > 0 || faulted_jobs > 0) {
      if (telemetry::Registry* reg = telemetry::global_registry()) {
        if (throttled_jobs > 0) {
          reg->counter("device.thermal_throttled_jobs").add(throttled_jobs);
        }
        if (spiked_jobs > 0) {
          reg->counter("device.latency_spike_jobs").add(spiked_jobs);
        }
        if (faulted_jobs > 0) {
          reg->counter("device.faulted_jobs").add(faulted_jobs);
        }
      }
    }
  }
  clock.advance(m.true_duration);

  const auto jobs = static_cast<double>(count);
  const double latency_cv =
      noise_.effective_cv(noise_.latency_cv, m.true_duration.value());
  m.measured_latency = Seconds{m.true_duration.value() / jobs *
                               rng_.lognormal_mean1(latency_cv)};
  m.measured_energy =
      sensor_.read_energy(m.true_energy, m.true_duration) / jobs;
  if (faults_ != nullptr) {
    // Flaky measurement read: the whole window's readings are distorted;
    // the true execution (clock, energy accounting) is untouched.
    const double distortion =
        faults_->measurement_distortion(clock.now().value());
    if (distortion != 1.0) {
      m.measured_latency = m.measured_latency * distortion;
      m.measured_energy = m.measured_energy * distortion;
      if (telemetry::Registry* reg = telemetry::global_registry()) {
        reg->counter("device.flaky_measurements").add(1);
      }
    }
  }
  return m;
}

}  // namespace bofl::device
