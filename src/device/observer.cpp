#include "device/observer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace bofl::device {

void SimClock::advance(Seconds delta) {
  BOFL_REQUIRE(delta.value() >= 0.0, "time cannot move backwards");
  now_ += delta;
}

double NoiseModel::effective_cv(double base_cv, double duration) const {
  BOFL_REQUIRE(duration > 0.0, "measurement duration must be positive");
  const double amplification = std::min(
      std::sqrt(reference_duration / duration), max_amplification);
  return base_cv * std::max(amplification, 1.0);
}

ThermalState::ThermalState(const ThermalParams& params)
    : params_(params), temperature_c_(params.ambient_c) {
  BOFL_REQUIRE(params.time_constant_s > 0.0,
               "thermal time constant must be positive");
  BOFL_REQUIRE(params.throttle_cap > 0.0 && params.throttle_cap <= 1.0,
               "throttle cap must be in (0, 1]");
  BOFL_REQUIRE(params.thermal_resistance_c_per_w >= 0.0,
               "thermal resistance must be non-negative");
}

void ThermalState::advance(Watts power, Seconds duration) {
  BOFL_REQUIRE(duration.value() >= 0.0, "duration must be non-negative");
  // First-order RC: T' = T_inf + (T - T_inf) * exp(-dt / tau).
  const double steady =
      params_.ambient_c + params_.thermal_resistance_c_per_w * power.value();
  const double decay = std::exp(-duration.value() / params_.time_constant_s);
  temperature_c_ = steady + (temperature_c_ - steady) * decay;
}

bool ThermalState::throttled() const {
  return temperature_c_ >= params_.throttle_temp_c;
}

DvfsConfig ThermalState::effective_config(const DvfsSpace& space,
                                          const DvfsConfig& requested) const {
  if (!throttled()) {
    return requested;
  }
  const auto cap = [&](std::size_t index, std::size_t table_size) {
    const auto limit = static_cast<std::size_t>(
        params_.throttle_cap * static_cast<double>(table_size - 1));
    return std::min(index, limit);
  };
  return {cap(requested.cpu, space.cpu_table().size()),
          cap(requested.gpu, space.gpu_table().size()),
          cap(requested.mem, space.mem_table().size())};
}

PowerSensor::PowerSensor(NoiseModel noise, Rng rng)
    : noise_(noise), rng_(rng) {}

Joules PowerSensor::read_energy(Joules true_energy, Seconds duration) {
  const double cv = noise_.effective_cv(noise_.energy_cv, duration.value());
  return Joules{true_energy.value() * rng_.lognormal_mean1(cv)};
}

PerformanceObserver::PerformanceObserver(const DeviceModel& model,
                                         NoiseModel noise, std::uint64_t seed)
    : model_(model), noise_(noise), rng_(seed), sensor_(noise, rng_.split()) {
  BOFL_REQUIRE(noise.spike_probability >= 0.0 && noise.spike_probability < 1.0,
               "spike probability must be in [0, 1)");
  BOFL_REQUIRE(noise.spike_magnitude >= 1.0,
               "a latency spike cannot speed a job up");
  if (noise_.thermal) {
    thermal_.emplace(*noise_.thermal);
  }
}

void PerformanceObserver::enable_thermal(const ThermalParams& params) {
  thermal_.emplace(params);
}

Measurement PerformanceObserver::run_jobs(const WorkloadProfile& profile,
                                          const DvfsConfig& config,
                                          std::int64_t count,
                                          SimClock& clock) {
  BOFL_REQUIRE(count > 0, "must run at least one job");
  Measurement m;
  m.jobs = count;

  const bool job_level =
      noise_.spike_probability > 0.0 || thermal_.has_value();
  if (!job_level) {
    // Fast path: every job is identical.
    const Seconds per_job_latency = model_.latency(profile, config);
    const Joules per_job_energy = model_.energy(profile, config);
    const auto jobs = static_cast<double>(count);
    m.true_duration = per_job_latency * jobs;
    m.true_energy = per_job_energy * jobs;
  } else {
    // Disturbed path: spikes and/or thermal throttling vary per job.
    std::uint64_t throttled_jobs = 0;
    std::uint64_t spiked_jobs = 0;
    for (std::int64_t j = 0; j < count; ++j) {
      DvfsConfig effective = config;
      if (thermal_) {
        effective = thermal_->effective_config(model_.space(), config);
        if (thermal_->throttled()) {
          ++throttled_jobs;
        }
      }
      double latency = model_.latency(profile, effective).value();
      double energy = model_.energy(profile, effective).value();
      if (noise_.spike_probability > 0.0 &&
          rng_.bernoulli(noise_.spike_probability)) {
        // The device stays busy for the whole spike.
        latency *= noise_.spike_magnitude;
        energy *= noise_.spike_magnitude;
        ++spiked_jobs;
      }
      m.true_duration += Seconds{latency};
      m.true_energy += Joules{energy};
      if (thermal_) {
        thermal_->advance(Joules{energy} / Seconds{latency},
                          Seconds{latency});
      }
    }
    if (throttled_jobs > 0 || spiked_jobs > 0) {
      if (telemetry::Registry* reg = telemetry::global_registry()) {
        if (throttled_jobs > 0) {
          reg->counter("device.thermal_throttled_jobs").add(throttled_jobs);
        }
        if (spiked_jobs > 0) {
          reg->counter("device.latency_spike_jobs").add(spiked_jobs);
        }
      }
    }
  }
  clock.advance(m.true_duration);

  const auto jobs = static_cast<double>(count);
  const double latency_cv =
      noise_.effective_cv(noise_.latency_cv, m.true_duration.value());
  m.measured_latency = Seconds{m.true_duration.value() / jobs *
                               rng_.lognormal_mean1(latency_cv)};
  m.measured_energy =
      sensor_.read_energy(m.true_energy, m.true_duration) / jobs;
  return m;
}

}  // namespace bofl::device
