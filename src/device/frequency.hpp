// Discrete DVFS frequency tables and the 3-axis configuration lattice.
//
// Mirrors the paper's Table 1: each processing unit (CPU, GPU, memory
// controller) exposes a fixed table of operational frequencies; a DVFS
// configuration x ∈ X = F_CPU × F_GPU × F_MC picks one step per axis.
// Jetson AGX has 25 × 14 × 6 = 2100 configurations, TX2 has 936.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "linalg/matrix.hpp"

namespace bofl::device {

/// A sorted table of discrete operational frequencies for one unit.
class FrequencyTable {
 public:
  /// `steps` evenly spaced frequencies spanning [min_ghz, max_ghz].
  static FrequencyTable linear(double min_ghz, double max_ghz,
                               std::size_t steps);

  /// Explicit table; must be non-empty and strictly increasing.
  explicit FrequencyTable(std::vector<GigaHertz> frequencies);

  [[nodiscard]] std::size_t size() const { return frequencies_.size(); }
  [[nodiscard]] GigaHertz at(std::size_t index) const;
  [[nodiscard]] GigaHertz min() const { return frequencies_.front(); }
  [[nodiscard]] GigaHertz max() const { return frequencies_.back(); }

  /// Index of the table entry nearest to `freq` (ties resolve downward).
  [[nodiscard]] std::size_t nearest_index(GigaHertz freq) const;

  /// Normalize a step to [0, 1] by frequency value (not by index), which
  /// is the smoother coordinate for the GP surrogate.
  [[nodiscard]] double normalized(std::size_t index) const;

 private:
  std::vector<GigaHertz> frequencies_;
};

/// One point of the DVFS lattice, as indices into the three tables.
struct DvfsConfig {
  std::size_t cpu = 0;
  std::size_t gpu = 0;
  std::size_t mem = 0;

  friend bool operator==(const DvfsConfig&, const DvfsConfig&) = default;
};

class DvfsSpace;

/// Cap every axis of `config` at `cap * (steps - 1)` of its table — the
/// common shape of transparent thermal throttling and of the platform
/// governor rejecting/clamping a requested configuration (the software asks
/// for `config` but the hardware runs the capped point).  `cap` must be in
/// (0, 1]; 1.0 returns `config` unchanged.
[[nodiscard]] DvfsConfig clamp_config(const DvfsSpace& space,
                                      const DvfsConfig& config, double cap);

/// The full 3-axis configuration space X of one device.
class DvfsSpace {
 public:
  DvfsSpace(FrequencyTable cpu, FrequencyTable gpu, FrequencyTable mem);

  [[nodiscard]] const FrequencyTable& cpu_table() const { return cpu_; }
  [[nodiscard]] const FrequencyTable& gpu_table() const { return gpu_; }
  [[nodiscard]] const FrequencyTable& mem_table() const { return mem_; }

  /// Total number of configurations |X|.
  [[nodiscard]] std::size_t size() const;

  /// Flat index <-> lattice coordinates (row-major: cpu, gpu, mem).
  [[nodiscard]] std::size_t to_flat(const DvfsConfig& config) const;
  [[nodiscard]] DvfsConfig from_flat(std::size_t flat) const;

  [[nodiscard]] GigaHertz cpu_freq(const DvfsConfig& c) const;
  [[nodiscard]] GigaHertz gpu_freq(const DvfsConfig& c) const;
  [[nodiscard]] GigaHertz mem_freq(const DvfsConfig& c) const;

  /// x_max — all three units at their highest step (the paper's guardian
  /// and Performant configuration).
  [[nodiscard]] DvfsConfig max_config() const;

  /// Unit-cube coordinates of a configuration for the GP surrogate.
  [[nodiscard]] linalg::Vector normalized(const DvfsConfig& config) const;

  /// Every configuration's unit-cube coordinates, indexed by flat index.
  [[nodiscard]] std::vector<linalg::Vector> all_normalized() const;

  /// Human-readable "cpu=2.26GHz gpu=1.38GHz mem=2.13GHz".
  [[nodiscard]] std::string describe(const DvfsConfig& config) const;

 private:
  FrequencyTable cpu_;
  FrequencyTable gpu_;
  FrequencyTable mem_;
};

}  // namespace bofl::device
