// Simulated sysfs DVFS actuation.
//
// On a real Jetson, BoFL pins operational frequencies by writing the same
// value into the min_freq and max_freq sysfs files of each unit (paper §5.2,
// footnote 6).  This module reproduces that code path against an in-memory
// sysfs tree: string-keyed files, kernel-style units (kHz for cpufreq, Hz
// for devfreq), and snap-to-step semantics on write.  Deploying on real
// hardware means swapping SysfsTree for the actual filesystem.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "device/frequency.hpp"

namespace bofl::device {

/// In-memory stand-in for the sysfs filesystem.
class SysfsTree {
 public:
  /// Write `value` to `path`, creating the file if needed.
  void write(const std::string& path, const std::string& value);

  /// Read a file; throws std::invalid_argument if it does not exist.
  [[nodiscard]] const std::string& read(const std::string& path) const;

  [[nodiscard]] bool exists(const std::string& path) const;

  /// All file paths, sorted (for inspection and tests).
  [[nodiscard]] std::vector<std::string> paths() const;

  /// Materialize the tree under `root` on the real filesystem: each sysfs
  /// path becomes root + path with its current content.  Used to hand a
  /// snapshot to external tooling (or to diff against a live /sys).
  void materialize(const std::string& root) const;

  /// Load every regular file under `root` back into a tree (paths relative
  /// to root, with a leading '/').  Inverse of materialize().
  [[nodiscard]] static SysfsTree load_from(const std::string& root);

 private:
  std::map<std::string, std::string> files_;
};

/// Drives the three frequency domains through sysfs file writes.
class SysfsDvfsController {
 public:
  /// Builds the cpufreq/devfreq file layout for `space` and pins the
  /// maximum configuration (the kernel's boot default for performance
  /// governors).  The space reference must outlive the controller.
  explicit SysfsDvfsController(const DvfsSpace& space);

  /// Pin all three units to `config` (writes min_freq and max_freq).
  void apply(const DvfsConfig& config);

  /// Parse the cur_freq files back into a configuration, snapping each
  /// value to the nearest table step — mirrors how the kernel clamps
  /// arbitrary requested rates.
  [[nodiscard]] DvfsConfig current() const;

  /// Request an arbitrary CPU kHz / GPU Hz / MEM Hz rate (not necessarily a
  /// table value); the controller clamps to the nearest step like the
  /// kernel does.  Exposed for the sysfs-semantics tests.
  void request_raw(double cpu_khz, double gpu_hz, double mem_hz);

  [[nodiscard]] const SysfsTree& tree() const { return tree_; }

  // Canonical file locations (Jetson-style).
  static constexpr const char* kCpuMinPath =
      "/sys/devices/system/cpu/cpufreq/policy0/scaling_min_freq";
  static constexpr const char* kCpuMaxPath =
      "/sys/devices/system/cpu/cpufreq/policy0/scaling_max_freq";
  static constexpr const char* kCpuCurPath =
      "/sys/devices/system/cpu/cpufreq/policy0/scaling_cur_freq";
  static constexpr const char* kGpuMinPath =
      "/sys/devices/gpu.0/devfreq/gpu/min_freq";
  static constexpr const char* kGpuMaxPath =
      "/sys/devices/gpu.0/devfreq/gpu/max_freq";
  static constexpr const char* kGpuCurPath =
      "/sys/devices/gpu.0/devfreq/gpu/cur_freq";
  static constexpr const char* kMemMinPath =
      "/sys/devices/memory/devfreq/emc/min_freq";
  static constexpr const char* kMemMaxPath =
      "/sys/devices/memory/devfreq/emc/max_freq";
  static constexpr const char* kMemCurPath =
      "/sys/devices/memory/devfreq/emc/cur_freq";

 private:
  void pin(const char* min_path, const char* max_path, const char* cur_path,
           double value);

  const DvfsSpace& space_;
  SysfsTree tree_;
};

}  // namespace bofl::device
