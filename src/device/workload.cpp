#include "device/workload.hpp"

namespace bofl::device {

const char* to_string(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kTransformer:
      return "transformer";
    case WorkloadClass::kCnn:
      return "cnn";
    case WorkloadClass::kRnn:
      return "rnn";
  }
  return "unknown";
}

// The work constants are calibrated so that, on the Jetson AGX model at
// x_max = (2.26, 1.38, 2.13) GHz, the per-minibatch latency matches the
// values implied by the paper's Table 2 (T_min = T(x_max) · W):
//   ViT 0.186 s, ResNet50 0.261 s, LSTM 0.288 s.
// See tests/device/device_model_test.cc for the pinned calibration checks.

WorkloadProfile vit_profile() {
  WorkloadProfile p;
  p.name = "vit";
  p.workload_class = WorkloadClass::kTransformer;
  p.cpu_work = 0.1400;
  p.gpu_work = 0.2091;
  p.mem_work = 0.1613;
  p.serial_fraction = 0.25;
  return p;
}

WorkloadProfile resnet50_profile() {
  WorkloadProfile p;
  p.name = "resnet50";
  p.workload_class = WorkloadClass::kCnn;
  p.cpu_work = 0.1078;
  p.gpu_work = 0.3077;
  p.mem_work = 0.3046;
  p.serial_fraction = 0.20;
  return p;
}

WorkloadProfile lstm_profile() {
  WorkloadProfile p;
  p.name = "lstm";
  p.workload_class = WorkloadClass::kRnn;
  p.cpu_work = 0.4500;
  p.gpu_work = 0.1690;
  p.mem_work = 0.1630;
  p.serial_fraction = 0.45;
  p.cpu_power_intensity = 0.75;
  return p;
}

std::vector<WorkloadProfile> paper_profiles() {
  return {vit_profile(), resnet50_profile(), lstm_profile()};
}

std::optional<WorkloadProfile> profile_from_string(std::string_view name) {
  for (WorkloadProfile& profile : paper_profiles()) {
    if (profile.name == name) {
      return std::move(profile);
    }
  }
  return std::nullopt;
}

}  // namespace bofl::device
