// Analytical device model: latency and power of one training job as a
// function of the DVFS configuration.
//
// This is the simulator standing in for the paper's Jetson AGX / TX2
// testbeds (see DESIGN.md §2 for the substitution argument).  The model is
// intentionally simple but produces the response-surface *shapes* the paper
// measures in §2.2:
//
// Latency.  Each unit u ∈ {cpu, gpu, mem} contributes busy time
//     t_u = work_u / (f_u · scale_u),
// where scale_u is the device's per-clock throughput for that unit (the
// GPU scale additionally depends on the workload class — newer
// architectures accelerate CNNs more than RNNs, the paper's "hardware
// dependence").  A serial fraction α of the work cannot overlap:
//     T(x) = α · (t_cpu + t_gpu + t_mem) + (1 − α) · max(t_cpu, t_gpu, t_mem).
// This yields the bottleneck saturation of Fig. 3(a) and the model-
// dependent CPU-frequency response of Fig. 4(a).
//
// Power.  Per-unit dynamic power follows the classic f · V(f)^2 law with a
// convex voltage/frequency curve V(rel) = v_min + (v_max − v_min) · rel^γ,
// weighted by the unit's utilization t_u / T; a constant board idle power
// covers leakage and the rest of the SoC:
//     P(x) = P_idle + Σ_u κ_u · ι_u · f_u · V_u(f_u)^2 · (t_u / T).
// Energy per job E(x) = P(x) · T(x) then decomposes into an idle term
// P_idle · T (favouring fast clocks — race to idle) and dynamic terms
// κ_u · ι_u · work_u · V_u^2 / scale_u (favouring slow clocks), whose sum
// is the non-monotonic energy curve of Fig. 3(b)/4(b).
#pragma once

#include <map>
#include <string>

#include "common/units.hpp"
#include "device/frequency.hpp"
#include "device/workload.hpp"

namespace bofl::device {

/// Voltage/power parameters of one processing unit.
struct UnitPowerModel {
  double v_min = 0.6;   ///< rail voltage at the lowest table frequency [V]
  double v_max = 1.1;   ///< rail voltage at the highest table frequency [V]
  double gamma = 1.4;   ///< convexity of the V(f) curve
  double kappa = 1.0;   ///< dynamic-power coefficient [W / (GHz · V^2)]

  /// Rail voltage at relative frequency rel ∈ [0, 1].
  [[nodiscard]] double voltage(double rel) const;
};

/// Full hardware description of one simulated device.
struct DeviceSpec {
  std::string name;
  double cpu_scale = 1.0;  ///< per-clock CPU throughput vs the AGX reference
  double mem_scale = 1.0;  ///< per-clock memory throughput vs reference
  /// Per-clock GPU throughput by workload class (architecture affinity).
  std::map<WorkloadClass, double> gpu_class_scale;
  double idle_power_watts = 6.0;
  UnitPowerModel cpu_power;
  UnitPowerModel gpu_power;
  UnitPowerModel mem_power;
};

/// Ground-truth performance oracle for one device.  All values are exact
/// (noise-free); measurement noise is added by the PowerSensor /
/// PerformanceObserver layer.
class DeviceModel {
 public:
  DeviceModel(DeviceSpec spec, DvfsSpace space);

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const DvfsSpace& space() const { return space_; }
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// T(x): exact latency of one job (one minibatch) under `config`.
  [[nodiscard]] Seconds latency(const WorkloadProfile& profile,
                                const DvfsConfig& config) const;

  /// Average power draw while running `profile` under `config`.
  [[nodiscard]] Watts average_power(const WorkloadProfile& profile,
                                    const DvfsConfig& config) const;

  /// E(x) = P(x) · T(x): exact energy of one job under `config`.
  [[nodiscard]] Joules energy(const WorkloadProfile& profile,
                              const DvfsConfig& config) const;

  /// T_min of a round of `num_jobs` jobs: latency at x_max times the job
  /// count (the paper's Table 2 definition).
  [[nodiscard]] Seconds round_t_min(const WorkloadProfile& profile,
                                    std::int64_t num_jobs) const;

 private:
  struct BusyTimes {
    double cpu = 0.0;
    double gpu = 0.0;
    double mem = 0.0;
    double total_latency = 0.0;
  };
  [[nodiscard]] BusyTimes busy_times(const WorkloadProfile& profile,
                                     const DvfsConfig& config) const;
  [[nodiscard]] double gpu_scale_for(WorkloadClass c) const;

  DeviceSpec spec_;
  DvfsSpace space_;
};

/// Flat config-indexed SoA snapshot of one (device, workload) pair's exact
/// per-job cost surface: entry `f` holds the latency / energy / average
/// power of DvfsSpace::from_flat(f).  The simulation inner loop (the
/// PerformanceObserver's per-job path) indexes these arrays instead of
/// re-walking the analytical model — which hides a std::map lookup
/// (gpu_class_scale) plus pow/voltage arithmetic behind every call.  Each
/// value is produced by the corresponding DeviceModel method, so table
/// reads are bit-identical to direct model calls by construction.
struct FlatPerfTable {
  std::vector<double> latency_s;  ///< T(x) per job [s]
  std::vector<double> energy_j;   ///< E(x) per job [J]
  std::vector<double> power_w;    ///< P(x) average draw [W]

  [[nodiscard]] std::size_t size() const { return latency_s.size(); }

  /// Sweep every flat configuration of `model` under `profile`.  O(|space|)
  /// model evaluations — ~2100 for the AGX — paid once per (device,
  /// workload) pair instead of once per job.
  [[nodiscard]] static FlatPerfTable build(const DeviceModel& model,
                                           const WorkloadProfile& profile);
};

/// The Jetson AGX Xavier testbed (Table 1): CPU 0.42–2.26 GHz × 25 steps,
/// GPU 0.11–1.38 GHz × 14 steps, MEM 0.20–2.13 GHz × 6 steps; 2100 configs.
[[nodiscard]] DeviceModel jetson_agx();

/// The Jetson TX2 testbed (Table 1): CPU 0.34–2.03 GHz × 12 steps,
/// GPU 0.11–1.30 GHz × 13 steps, MEM 0.41–1.87 GHz × 6 steps; 936 configs.
[[nodiscard]] DeviceModel jetson_tx2();

/// Phone-class calibration point (fleet-population scenarios): big-core
/// mobile SoC, CPU 0.30–2.80 GHz × 16, GPU 0.15–0.95 GHz × 9,
/// MEM 0.55–2.09 GHz × 4; 576 configs, sub-watt idle.  Slower than both
/// Jetsons on GPU-bound work; its tiny idle draw moves the energy-optimal
/// configs toward low clocks.
[[nodiscard]] DeviceModel pixel_phone();

/// Server-class calibration point (fleet-population scenarios): discrete
/// accelerator, CPU 1.20–3.40 GHz × 16, GPU 0.30–1.80 GHz × 12,
/// MEM 0.80–3.20 GHz × 4; 768 configs, 45 W idle.  Fastest device in the
/// fleet; race-to-idle dominates and pushes the energy optimum near x_max.
[[nodiscard]] DeviceModel edge_server();

}  // namespace bofl::device
