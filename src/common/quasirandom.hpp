// Low-discrepancy (quasi-random) sequences.
//
// BoFL's safe random exploration phase (§4.2 of the paper) samples its
// starting points "uniformly distributed over X, using a quasi-random
// number generator".  We provide two generators:
//   * HaltonSequence — radical-inverse in coprime prime bases, optionally
//     scrambled; simple and excellent in <= 6 dimensions.
//   * SobolSequence — direction-number based, supports up to 8 dimensions
//     with the classic Joe–Kuo parameters embedded.
// Both produce points in the unit hypercube [0, 1)^d.
#pragma once

#include <cstdint>
#include <vector>

namespace bofl {

/// Abstract interface: a stream of d-dimensional points in [0,1)^d.
class QuasiRandomSequence {
 public:
  virtual ~QuasiRandomSequence() = default;

  [[nodiscard]] virtual std::size_t dimension() const = 0;

  /// The next point in the sequence.
  [[nodiscard]] virtual std::vector<double> next() = 0;

  /// Convenience: the next n points.
  [[nodiscard]] std::vector<std::vector<double>> take(std::size_t n);
};

/// Halton sequence with per-dimension prime bases (2, 3, 5, ...).
/// `leap_burn_in` drops the first few points, which are known to be poorly
/// distributed in higher bases.
class HaltonSequence final : public QuasiRandomSequence {
 public:
  explicit HaltonSequence(std::size_t dimension, std::size_t leap_burn_in = 20);

  [[nodiscard]] std::size_t dimension() const override { return dimension_; }
  [[nodiscard]] std::vector<double> next() override;

  /// Radical inverse of `index` in base `base` (exposed for testing).
  [[nodiscard]] static double radical_inverse(std::uint64_t index,
                                              std::uint32_t base);

 private:
  std::size_t dimension_;
  std::uint64_t index_;
};

/// Sobol sequence (Gray-code construction) for up to 8 dimensions.
class SobolSequence final : public QuasiRandomSequence {
 public:
  static constexpr std::size_t kMaxDimension = 8;

  explicit SobolSequence(std::size_t dimension);

  [[nodiscard]] std::size_t dimension() const override { return dimension_; }
  [[nodiscard]] std::vector<double> next() override;

 private:
  std::size_t dimension_;
  std::uint64_t index_ = 0;
  std::vector<std::vector<std::uint64_t>> direction_;  // [dim][bit]
  std::vector<std::uint64_t> current_;                 // Gray-code state
};

/// Map a point in [0,1)^d onto a mixed-radix integer grid: coordinate i is
/// floor(u_i * sizes[i]), clamped to sizes[i]-1.  Used to project quasi-
/// random points onto the discrete DVFS lattice.
[[nodiscard]] std::vector<std::size_t> to_grid_indices(
    const std::vector<double>& unit_point, const std::vector<std::size_t>& sizes);

}  // namespace bofl
