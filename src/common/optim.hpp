// Derivative-free local optimization (Nelder–Mead).
//
// Used by the GP layer to maximize the log marginal likelihood over kernel
// hyperparameters (a 3–4 dimensional smooth problem where gradients are
// awkward to thread through the Cholesky).  Multi-start restarts are the
// caller's job; see gp/hyperopt.
#pragma once

#include <functional>
#include <vector>

namespace bofl {

struct NelderMeadOptions {
  std::size_t max_iterations = 400;
  /// Convergence: stop when the simplex function-value spread and the
  /// simplex diameter both fall below these tolerances.
  double f_tolerance = 1e-9;
  double x_tolerance = 1e-7;
  /// Initial simplex edge length (per coordinate, relative step with an
  /// absolute floor).
  double initial_step = 0.25;
};

struct NelderMeadResult {
  std::vector<double> x;
  double f = 0.0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Minimize `f` starting from `x0` with the Nelder–Mead simplex method
/// (standard reflection/expansion/contraction/shrink coefficients).
[[nodiscard]] NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, const NelderMeadOptions& options = {});

}  // namespace bofl
