#include "common/flags.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace bofl {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    BOFL_REQUIRE(!body.empty(), "bare '--' is not a valid flag");
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool FlagParser::has(const std::string& name) const {
  return values_.contains(name);
}

std::string FlagParser::get(const std::string& name,
                            const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double FlagParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  BOFL_REQUIRE(end != it->second.c_str() && *end == '\0',
               "flag --" + name + " expects a number, got: " + it->second);
  return value;
}

std::int64_t FlagParser::get_int(const std::string& name,
                                 std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  BOFL_REQUIRE(end != it->second.c_str() && *end == '\0',
               "flag --" + name + " expects an integer, got: " + it->second);
  return value;
}

bool FlagParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> FlagParser::keys() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace bofl
