#include "common/fast_normal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace bofl {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}  // namespace

// Multi-versioned on x86-64 gcc: the resolver picks the widest vector ISA
// the machine has (AVX-512 halves the per-element cost vs AVX2), while the
// "default" clone keeps baseline machines and other compilers working.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__)
__attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#endif
void normal_pdf_cdf_batch(const double* t, std::size_t count, double* pdf,
                          double* cdf) {
  const double kLog2e = 1.4426950408889634;
  // exp(x) = 2^k * exp(r), r = x - k*ln2 split into a high/low pair so the
  // reduction stays exact to the last bit of the degree-11 Taylor core.
  const double kLn2Hi = 6.93147180369123816490e-01;
  const double kLn2Lo = 1.90821492927058770002e-10;
  const double kShift = 6755399441055744.0;  // 1.5 * 2^52: round-to-int trick
  for (std::size_t i = 0; i < count; ++i) {
    const double ti = t[i];
    double z = std::fabs(ti);
    // Keep -z^2/2 inside the scaled-exponent domain; everything past the
    // flush threshold below is forced to exact zero anyway.
    z = std::min(z, 37.7);
    const double x = -0.5 * z * z;
    double kd = x * kLog2e + kShift;
    std::int64_t ki;
    std::memcpy(&ki, &kd, 8);
    ki = (ki << 32) >> 32;  // low mantissa bits hold round(x * log2 e)
    kd -= kShift;
    const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
    double q = 1.0 / 39916800.0;
    q = q * r + 1.0 / 3628800.0;
    q = q * r + 1.0 / 362880.0;
    q = q * r + 1.0 / 40320.0;
    q = q * r + 1.0 / 5040.0;
    q = q * r + 1.0 / 720.0;
    q = q * r + 1.0 / 120.0;
    q = q * r + 1.0 / 24.0;
    q = q * r + 1.0 / 6.0;
    q = q * r + 0.5;
    q = q * r + 1.0;
    q = q * r + 1.0;
    std::int64_t sbits = (ki + 1023) << 52;
    double scale;
    std::memcpy(&scale, &sbits, 8);
    const double e = q * scale;  // exp(-z^2/2)
    double p = kInvSqrt2Pi * e;
    // Hart 5666 / West(2005) rational for the complementary cdf, |z| < 5/√2.
    double num = 3.52624965998911e-02;
    num = num * z + 0.700383064443688;
    num = num * z + 6.37396220353165;
    num = num * z + 33.912866078383;
    num = num * z + 112.079291497871;
    num = num * z + 221.213596169931;
    num = num * z + 220.206867912376;
    double den = 8.83883476483184e-02;
    den = den * z + 1.75566716318264;
    den = den * z + 16.064177579207;
    den = den * z + 86.7807322029461;
    den = den * z + 296.564248779674;
    den = den * z + 637.333633378831;
    den = den * z + 793.826512519948;
    den = den * z + 440.413735824752;
    const double c_main = e * num / den;
    // Far tail: five-term asymptotic Mills-ratio series, pdf(z)/z * (1 - ...).
    const double inv = 1.0 / z;
    const double inv2 = inv * inv;
    const double c_tail =
        p * inv *
        (1.0 -
         inv2 * (1.0 - 3.0 * inv2 *
                           (1.0 - 5.0 * inv2 *
                                      (1.0 - 7.0 * inv2 * (1.0 - 9.0 * inv2)))));
    double c = z < 7.07106781186547 ? c_main : c_tail;
    // Flush to the exact zeros libm would produce, preserving exact-zero
    // acquisition ties (and masking the clamped-exp garbage past z = 37.7).
    const bool flush = z > 37.6;
    c = flush ? 0.0 : c;
    p = flush ? 0.0 : p;
    pdf[i] = p;
    cdf[i] = ti <= 0.0 ? c : 1.0 - c;
  }
}

}  // namespace bofl
