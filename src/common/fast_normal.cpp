#include "common/fast_normal.hpp"

#include "linalg/simd/kernels.hpp"

namespace bofl {

// Dispatch contract: the polynomial lives in linalg/simd (scalar reference
// plus a hand-written AVX2 path selected once per process — see
// linalg/simd/dispatch.hpp).  The kernel is elementwise, and the AVX2 body
// uses no FMA contractions, so both levels produce identical bits; what the
// dispatch buys is throughput, not a different answer.  BOFL_SIMD=scalar
// therefore reproduces this function's historical output exactly.
void normal_pdf_cdf_batch(const double* t, std::size_t count, double* pdf,
                          double* cdf) {
  linalg::simd::normal_pdf_cdf_batch(t, count, pdf, cdf);
}

}  // namespace bofl
