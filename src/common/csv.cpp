#include "common/csv.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace bofl {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  BOFL_REQUIRE(!header.empty(), "CSV header cannot be empty");
  BOFL_REQUIRE(out_.is_open(), "cannot open CSV file: " + path);
  write_raw(header);
  rows_ = 0;  // the header does not count as a data row
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted += c;
    }
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_raw(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  BOFL_REQUIRE(cells.size() == columns_,
               "CSV row width must match the header");
  write_raw(cells);
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (const double v : cells) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    text.emplace_back(buffer);
  }
  write_row(text);
}

std::vector<std::string> CsvReader::parse_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  BOFL_REQUIRE(!quoted, "unterminated quote in CSV line: " + line);
  cells.push_back(std::move(cell));
  return cells;
}

CsvReader::CsvReader(const std::string& path) {
  std::ifstream in(path);
  BOFL_REQUIRE(in.is_open(), "cannot open CSV file: " + path);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> cells = parse_line(line);
    if (first) {
      header_ = std::move(cells);
      first = false;
      continue;
    }
    BOFL_REQUIRE(cells.size() == header_.size(),
                 "CSV row width mismatch in " + path);
    rows_.push_back(std::move(cells));
  }
  BOFL_REQUIRE(!header_.empty(), "CSV file has no header: " + path);
}

std::size_t CsvReader::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) {
      return i;
    }
  }
  BOFL_REQUIRE(false, "no such CSV column: " + name);
  return 0;
}

}  // namespace bofl
