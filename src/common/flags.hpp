// A tiny command-line flag parser for the tools and examples.
//
// Accepted syntax:  --key=value   --key value   --switch   positional
// Unknown flags are the caller's business: ask for `keys()` and validate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bofl {

class FlagParser {
 public:
  /// Parse argv (argv[0] is skipped).  A token starting with "--" is a flag;
  /// if the next token does not start with "--" it becomes the value,
  /// otherwise the flag is boolean ("true").  "--key=value" works too.
  FlagParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// String value, or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Numeric values; throw std::invalid_argument on unparsable content.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Boolean switch: present (without value or with "true"/"1") -> true.
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// All flag names seen, sorted (for unknown-flag validation).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace bofl
