// Deterministic pseudo-random number generation.
//
// Every stochastic component in BoFL takes an explicit seed so that the
// whole simulation — device noise, deadline sampling, exploration order —
// is reproducible.  The generator is xoshiro256** (Blackman & Vigna, 2018)
// seeded via SplitMix64, which is fast, high quality, and trivially
// splittable for independent substreams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace bofl {

/// SplitMix64: used for seeding and for cheap one-shot hashes.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic seed for substream `stream` of a base seed.  Parallel code
/// derives one independent Rng per *task* (client, candidate, round — never
/// per thread), so results are bit-identical whatever the worker count and
/// scheduling order (runtime/thread_pool.hpp relies on this contract).
/// Two SplitMix64 passes decorrelate even adjacent (base, stream) pairs.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t base,
                                        std::uint64_t stream);

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, but the convenience members below
/// cover everything BoFL needs without the libstdc++ distribution quirks.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  [[nodiscard]] std::size_t uniform_index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached spare deviate).
  [[nodiscard]] double normal();

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Lognormal such that the *mean* of the distribution is `mean` and the
  /// coefficient of variation is `cv`.  Used for multiplicative measurement
  /// noise: lognormal_mean1(cv) has expectation exactly 1.
  [[nodiscard]] double lognormal_mean1(double cv);

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// Derive an independent child generator (for substreams).
  [[nodiscard]] Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace bofl
