#include "common/optim.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace bofl {

namespace {

struct Vertex {
  std::vector<double> x;
  double f;
};

}  // namespace

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, const NelderMeadOptions& options) {
  BOFL_REQUIRE(!x0.empty(), "nelder_mead needs a non-empty starting point");
  const std::size_t n = x0.size();

  NelderMeadResult result;
  auto evaluate = [&](const std::vector<double>& x) {
    ++result.evaluations;
    const double v = f(x);
    // NaN poisons simplex ordering; treat it as "very bad" instead.
    return std::isnan(v) ? std::numeric_limits<double>::infinity() : v;
  };

  // Initial simplex: x0 plus a perturbation along each axis.
  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  simplex.push_back({x0, evaluate(x0)});
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x = x0;
    const double step =
        options.initial_step * std::max(std::abs(x[i]), 1.0);
    x[i] += step;
    simplex.push_back({std::move(x), 0.0});
    simplex.back().f = evaluate(simplex.back().x);
  }

  constexpr double alpha = 1.0;   // reflection
  constexpr double gamma = 2.0;   // expansion
  constexpr double rho = 0.5;     // contraction
  constexpr double sigma = 0.5;   // shrink

  auto order = [&] {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  };
  order();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Convergence check: function spread and simplex diameter.
    const double f_spread = simplex.back().f - simplex.front().f;
    double diameter = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double lo = simplex[0].x[i];
      double hi = lo;
      for (const Vertex& v : simplex) {
        lo = std::min(lo, v.x[i]);
        hi = std::max(hi, v.x[i]);
      }
      diameter = std::max(diameter, hi - lo);
    }
    if (f_spread < options.f_tolerance && diameter < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all vertices except the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < n; ++i) {
        centroid[i] += simplex[v].x[i];
      }
    }
    for (double& c : centroid) {
      c /= static_cast<double>(n);
    }

    const Vertex& worst = simplex.back();
    auto blend = [&](double coeff) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = centroid[i] + coeff * (centroid[i] - worst.x[i]);
      }
      return x;
    };

    std::vector<double> reflected = blend(alpha);
    const double f_reflected = evaluate(reflected);

    if (f_reflected < simplex.front().f) {
      std::vector<double> expanded = blend(gamma);
      const double f_expanded = evaluate(expanded);
      if (f_expanded < f_reflected) {
        simplex.back() = {std::move(expanded), f_expanded};
      } else {
        simplex.back() = {std::move(reflected), f_reflected};
      }
    } else if (f_reflected < simplex[n - 1].f) {
      simplex.back() = {std::move(reflected), f_reflected};
    } else {
      // Contraction (outside if the reflected point improved on the worst).
      const bool outside = f_reflected < worst.f;
      std::vector<double> contracted = blend(outside ? rho : -rho);
      const double f_contracted = evaluate(contracted);
      const double reference = outside ? f_reflected : worst.f;
      if (f_contracted < reference) {
        simplex.back() = {std::move(contracted), f_contracted};
      } else {
        // Shrink toward the best vertex.
        for (std::size_t v = 1; v <= n; ++v) {
          for (std::size_t i = 0; i < n; ++i) {
            simplex[v].x[i] = simplex[0].x[i] +
                              sigma * (simplex[v].x[i] - simplex[0].x[i]);
          }
          simplex[v].f = evaluate(simplex[v].x);
        }
      }
    }
    order();
  }

  result.x = simplex.front().x;
  result.f = simplex.front().f;
  return result;
}

}  // namespace bofl
