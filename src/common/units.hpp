// Strong scalar types for the physical quantities that flow through BoFL.
//
// The controller juggles seconds, joules, watts and hertz; mixing them up is
// an easy and expensive mistake.  Each quantity is a distinct type holding a
// double, with only the physically meaningful operations defined:
//   Joules / Seconds -> Watts,  Watts * Seconds -> Joules, etc.
// `.value()` extracts the raw double at the I/O boundary.
#pragma once

#include <compare>
#include <ostream>

namespace bofl {

namespace detail {

/// CRTP base providing the affine-quantity operations shared by all units.
template <typename Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value() + b.value()};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value() - b.value()};
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value() / s};
  }
  /// Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value() / b.value();
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value() <=> b.value();
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value() == b.value();
  }
  Derived& operator+=(Derived other) {
    value_ += other.value();
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(Derived other) {
    value_ -= other.value();
    return static_cast<Derived&>(*this);
  }
  friend std::ostream& operator<<(std::ostream& os, Derived q) {
    return os << q.value() << Derived::unit_suffix();
  }

 private:
  double value_ = 0.0;
};

}  // namespace detail

class Seconds final : public detail::Quantity<Seconds> {
 public:
  using Quantity::Quantity;
  static constexpr const char* unit_suffix() { return "s"; }
};

class Joules final : public detail::Quantity<Joules> {
 public:
  using Quantity::Quantity;
  static constexpr const char* unit_suffix() { return "J"; }
};

class Watts final : public detail::Quantity<Watts> {
 public:
  using Quantity::Quantity;
  static constexpr const char* unit_suffix() { return "W"; }
};

/// Operational frequency in GHz (the natural unit for Jetson DVFS tables).
class GigaHertz final : public detail::Quantity<GigaHertz> {
 public:
  using Quantity::Quantity;
  static constexpr const char* unit_suffix() { return "GHz"; }
};

/// Power integrated over time yields energy.
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }

/// Energy over time yields average power.
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}

/// Energy at a given power takes this long.
constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds{e.value() / p.value()};
}

}  // namespace bofl
