#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bofl {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t stream_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t state = base;
  std::uint64_t mixed = splitmix64(state) ^ stream;
  return splitmix64(mixed);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BOFL_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  BOFL_REQUIRE(n > 0, "uniform_index needs a non-empty range");
  // Lemire-style rejection-free bounded draw is overkill here; modulo bias
  // for n << 2^64 is far below any effect BoFL measures, but we still use
  // rejection sampling to keep the property tests exact.
  const std::uint64_t bound = n;
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return static_cast<std::size_t>(r % bound);
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BOFL_REQUIRE(lo <= hi, "uniform_int needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller; u1 is bounded away from zero to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  BOFL_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

double Rng::lognormal_mean1(double cv) {
  BOFL_REQUIRE(cv >= 0.0, "coefficient of variation must be non-negative");
  if (cv == 0.0) {
    return 1.0;
  }
  // X = exp(N(mu, sigma^2)) with sigma^2 = log(1 + cv^2) and
  // mu = -sigma^2/2 gives E[X] = 1 and CV(X) = cv exactly.
  const double sigma2 = std::log1p(cv * cv);
  const double mu = -0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

bool Rng::bernoulli(double p) {
  BOFL_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  BOFL_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Partial Fisher–Yates over an index vector: O(n) space, exact.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool[i] = i;
  }
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

Rng Rng::split() {
  // Mix two draws into a fresh seed; streams overlap with probability ~2^-64.
  std::uint64_t s = (*this)() ^ rotl((*this)(), 29);
  return Rng(splitmix64(s));
}

}  // namespace bofl
