#include "common/quasirandom.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace bofl {

std::vector<std::vector<double>> QuasiRandomSequence::take(std::size_t n) {
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(next());
  }
  return points;
}

namespace {
constexpr std::array<std::uint32_t, 8> kPrimes = {2, 3, 5, 7, 11, 13, 17, 19};
}

HaltonSequence::HaltonSequence(std::size_t dimension, std::size_t leap_burn_in)
    : dimension_(dimension), index_(leap_burn_in) {
  BOFL_REQUIRE(dimension >= 1 && dimension <= kPrimes.size(),
               "HaltonSequence supports 1..8 dimensions");
}

double HaltonSequence::radical_inverse(std::uint64_t index,
                                       std::uint32_t base) {
  double inverse = 0.0;
  double digit_weight = 1.0 / base;
  while (index > 0) {
    inverse += digit_weight * static_cast<double>(index % base);
    index /= base;
    digit_weight /= base;
  }
  return inverse;
}

std::vector<double> HaltonSequence::next() {
  std::vector<double> point(dimension_);
  ++index_;
  for (std::size_t d = 0; d < dimension_; ++d) {
    point[d] = radical_inverse(index_, kPrimes[d]);
  }
  return point;
}

namespace {

// Joe–Kuo direction-number parameters for Sobol dimensions 2..8.
// Dimension 1 is the van der Corput sequence (all m_i = 1).
// Each row: degree s, primitive-polynomial coefficient a, initial m values.
struct SobolParams {
  unsigned degree;
  unsigned poly_a;
  std::array<std::uint64_t, 7> m;
};

constexpr std::array<SobolParams, 7> kSobolParams = {{
    {1, 0, {1, 0, 0, 0, 0, 0, 0}},
    {2, 1, {1, 3, 0, 0, 0, 0, 0}},
    {3, 1, {1, 3, 1, 0, 0, 0, 0}},
    {3, 2, {1, 1, 1, 0, 0, 0, 0}},
    {4, 1, {1, 1, 3, 3, 0, 0, 0}},
    {4, 4, {1, 3, 5, 13, 0, 0, 0}},
    {5, 2, {1, 1, 5, 5, 17, 0, 0}},
}};

constexpr unsigned kSobolBits = 52;  // fits exactly in a double mantissa

}  // namespace

SobolSequence::SobolSequence(std::size_t dimension)
    : dimension_(dimension),
      direction_(dimension, std::vector<std::uint64_t>(kSobolBits, 0)),
      current_(dimension, 0) {
  BOFL_REQUIRE(dimension >= 1 && dimension <= kMaxDimension,
               "SobolSequence supports 1..8 dimensions");
  // Dimension 0: van der Corput — V_j = 2^(bits-1-j).
  for (unsigned j = 0; j < kSobolBits; ++j) {
    direction_[0][j] = std::uint64_t{1} << (kSobolBits - 1 - j);
  }
  for (std::size_t d = 1; d < dimension_; ++d) {
    const SobolParams& p = kSobolParams[d - 1];
    const unsigned s = p.degree;
    std::vector<std::uint64_t> m(kSobolBits);
    for (unsigned j = 0; j < s; ++j) {
      m[j] = p.m[j];
    }
    for (unsigned j = s; j < kSobolBits; ++j) {
      std::uint64_t value = m[j - s] ^ (m[j - s] << s);
      for (unsigned k = 1; k < s; ++k) {
        if ((p.poly_a >> (s - 1 - k)) & 1U) {
          value ^= m[j - k] << k;
        }
      }
      m[j] = value;
    }
    for (unsigned j = 0; j < kSobolBits; ++j) {
      direction_[d][j] = m[j] << (kSobolBits - 1 - j);
    }
  }
}

std::vector<double> SobolSequence::next() {
  // Gray-code update: flip the direction number of the lowest zero bit of
  // the previous index.  Point 0 is the origin; we emit it like standard
  // implementations do (callers who dislike (0,...,0) can drop it).
  std::vector<double> point(dimension_);
  constexpr double scale = 1.0 / static_cast<double>(std::uint64_t{1} << kSobolBits);
  for (std::size_t d = 0; d < dimension_; ++d) {
    point[d] = static_cast<double>(current_[d]) * scale;
  }
  unsigned lowest_zero = 0;
  std::uint64_t value = index_;
  while (value & 1U) {
    value >>= 1;
    ++lowest_zero;
  }
  BOFL_ASSERT(lowest_zero < kSobolBits, "Sobol sequence exhausted");
  for (std::size_t d = 0; d < dimension_; ++d) {
    current_[d] ^= direction_[d][lowest_zero];
  }
  ++index_;
  return point;
}

std::vector<std::size_t> to_grid_indices(const std::vector<double>& unit_point,
                                         const std::vector<std::size_t>& sizes) {
  BOFL_REQUIRE(unit_point.size() == sizes.size(),
               "point dimension must match grid dimension");
  std::vector<std::size_t> indices(sizes.size());
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    BOFL_REQUIRE(sizes[d] > 0, "grid dimensions must be non-empty");
    const double u = std::clamp(unit_point[d], 0.0, std::nextafter(1.0, 0.0));
    indices[d] = std::min(static_cast<std::size_t>(u * static_cast<double>(sizes[d])),
                          sizes[d] - 1);
  }
  return indices;
}

}  // namespace bofl
