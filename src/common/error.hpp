// Error-handling helpers shared across the BoFL libraries.
//
// Policy (following the C++ Core Guidelines, E.* section):
//   * Precondition violations by the caller -> throw std::invalid_argument
//     via BOFL_REQUIRE.  These are programmer errors at the API boundary and
//     the message names the violated condition.
//   * Internal invariant violations -> throw bofl::InternalError via
//     BOFL_ASSERT.  These indicate a bug inside the library.
//   * Recoverable domain conditions (e.g. "no feasible schedule") are
//     expressed in return types, never via exceptions.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace bofl {

/// Thrown when an internal invariant of the library is violated (a bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_require_failure(
    const char* condition, const std::string& message,
    std::source_location loc = std::source_location::current()) {
  throw std::invalid_argument(std::string(loc.file_name()) + ":" +
                              std::to_string(loc.line()) +
                              ": precondition failed: " + condition +
                              (message.empty() ? "" : " — " + message));
}

[[noreturn]] inline void throw_assert_failure(
    const char* condition, const std::string& message,
    std::source_location loc = std::source_location::current()) {
  throw InternalError(std::string(loc.file_name()) + ":" +
                      std::to_string(loc.line()) +
                      ": invariant violated: " + condition +
                      (message.empty() ? "" : " — " + message));
}

}  // namespace detail
}  // namespace bofl

/// Validate a caller-supplied precondition; throws std::invalid_argument.
#define BOFL_REQUIRE(cond, msg)                             \
  do {                                                      \
    if (!(cond)) {                                          \
      ::bofl::detail::throw_require_failure(#cond, (msg));  \
    }                                                       \
  } while (false)

/// Validate an internal invariant; throws bofl::InternalError.
#define BOFL_ASSERT(cond, msg)                              \
  do {                                                      \
    if (!(cond)) {                                          \
      ::bofl::detail::throw_assert_failure(#cond, (msg));   \
    }                                                       \
  } while (false)
