// Scalar statistics and normal-distribution primitives.
//
// The exact EHVI computation (src/bo) and the GP marginal likelihood
// (src/gp) are built on the standard normal pdf/cdf and the one-dimensional
// expected-improvement primitive psi(a, b, mu, sigma).  RunningStats is a
// Welford accumulator used wherever streaming means/variances are needed
// (measurement averaging, benchmark summaries).
#pragma once

#include <cstddef>
#include <vector>

namespace bofl {

/// Standard normal probability density.
[[nodiscard]] double normal_pdf(double z);

/// Standard normal cumulative distribution (via erfc for accuracy in tails).
[[nodiscard]] double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-12 over (1e-300, 1-1e-16)).
[[nodiscard]] double normal_quantile(double p);

/// Hypervolume-improvement building block (Emmerich & Yang):
///   psi(a, b, mu, sigma) = E[max(a - Y, 0) * 1{Y <= b}] for Y ~ N(mu, s^2)
///                        = sigma * pdf((b-mu)/sigma) + (a-mu) * cdf((b-mu)/sigma)
/// For sigma == 0 it degenerates to (a - mu) * 1{mu <= b} with the usual
/// truncation conventions.
[[nodiscard]] double psi_ei(double a, double b, double mu, double sigma);

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty input).
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// Sample standard deviation of a vector (0 for fewer than 2 values).
[[nodiscard]] double stddev_of(const std::vector<double>& values);

}  // namespace bofl
