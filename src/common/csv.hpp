// Minimal CSV writing (RFC-4180-style quoting) for exporting benchmark
// series and traces to plotting tools.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace bofl {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::invalid_argument if the file cannot be opened or the
  /// header is empty.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Write one row; must have exactly as many cells as the header.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: numeric row (formatted with %.10g).
  void write_row(const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }
  [[nodiscard]] std::size_t num_columns() const { return columns_; }

  /// Quote a cell per RFC 4180: wrap in double quotes when it contains a
  /// comma, quote, or newline; double any embedded quotes.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  void write_raw(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Parse a CSV file written by CsvWriter (RFC-4180 quoting).  Returns the
/// header separately from the data rows; every row is validated against
/// the header width.
class CsvReader {
 public:
  explicit CsvReader(const std::string& path);

  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Index of a header column; throws if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  /// Parse one line into cells (exposed for testing).
  [[nodiscard]] static std::vector<std::string> parse_line(
      const std::string& line);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bofl
