// Branch-free batched standard-normal pdf/cdf for acquisition hot loops.
//
// The exact EHVI strip sum spends ~95 % of its time in libm's erfc/exp
// (~25 ns per pdf+cdf pair on the reference container); every candidate
// needs 2(n+1) pairs against an n-point front, so one greedy pick over a
// ~2100-config DVFS lattice burns milliseconds in special functions alone.
// normal_pdf_cdf_batch replaces the pair with a vectorizable polynomial
// evaluation: a magic-number-rounded exp (two-part ln2 reduction, degree-11
// Taylor core), the Hart/West rational approximation for the cdf main
// branch, and an asymptotic Mills-ratio series in the far tail.
//
// Accuracy (measured against erfc-based normal_cdf): absolute error
// <= ~2e-15 everywhere; relative error <= ~3e-9 for t >= -7 and <= ~6e-7
// across the series seam (t in [-9, -7]).  That is orders of magnitude
// below both the GP posterior's own uncertainty and the 1–3 % physical
// measurement noise the beliefs are fitted to, so acquisition rankings are
// unaffected except between candidates whose EHVI already ties at zero —
// and both pdf and cdf flush to exact 0.0 beyond |t| > 37.6 (where libm
// also returns 0), so those ties are preserved bit-exactly.
//
// Determinism: the kernel is elementwise and branch-free — output bits for
// an element depend only on that element's input, never on the batch size
// or its position in the array — so blocked and scalar callers agree
// bit-for-bit (asserted by tests/common/fast_normal_test.cpp).
#pragma once

#include <cstddef>

namespace bofl {

/// pdf[i] = standard normal density at t[i]; cdf[i] = P(Z <= t[i]).
/// Arrays must not alias `t` and must hold `count` doubles.
void normal_pdf_cdf_batch(const double* t, std::size_t count, double* pdf,
                          double* cdf);

}  // namespace bofl
