#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace bofl {

double normal_pdf(double z) {
  static const double kInvSqrt2Pi = 1.0 / std::sqrt(2.0 * M_PI);
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z * M_SQRT1_2);
}

double normal_quantile(double p) {
  BOFL_REQUIRE(p > 0.0 && p < 1.0, "quantile needs p in (0, 1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact cdf/pdf.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double psi_ei(double a, double b, double mu, double sigma) {
  BOFL_REQUIRE(sigma >= 0.0, "psi_ei needs sigma >= 0");
  if (sigma == 0.0) {
    // Deterministic Y = mu: contributes (a - mu) if mu <= b and a >= mu.
    return (mu <= b) ? std::max(a - mu, 0.0) : 0.0;
  }
  const double t = (b - mu) / sigma;
  return sigma * normal_pdf(t) + (a - mu) * normal_cdf(t);
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double mean_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) {
    s.add(v);
  }
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) {
    s.add(v);
  }
  return std::sqrt(s.sample_variance());
}

}  // namespace bofl
