// A minimal dense tensor for the neural-network substrate.
//
// The FL layer needs real gradient computation so that FedAvg aggregates
// something meaningful; it does not need performance.  Tensor is a
// row-major float buffer with shape bookkeeping; layers implement their
// own kernels on top of it.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace bofl::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0f);

  [[nodiscard]] static Tensor zeros(std::vector<std::size_t> shape);
  /// Gaussian init with the given standard deviation.
  [[nodiscard]] static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                                    float stddev);

  [[nodiscard]] const std::vector<std::size_t>& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const;

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  [[nodiscard]] float& operator[](std::size_t flat) { return data_[flat]; }
  [[nodiscard]] float operator[](std::size_t flat) const {
    return data_[flat];
  }

  /// 2-D accessors (row-major); requires rank 2.
  [[nodiscard]] float& at(std::size_t r, std::size_t c);
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;

  /// 3-D accessors; requires rank 3.
  [[nodiscard]] float& at(std::size_t i, std::size_t j, std::size_t k);
  [[nodiscard]] float at(std::size_t i, std::size_t j, std::size_t k) const;

  void fill(float value);

  /// Element-wise in-place a += s * b; shapes must match.
  void add_scaled(const Tensor& b, float s);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// C = A(m,k) * B(k,n); shapes validated.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(m,k) * B(n,k)^T -> (m,n).
[[nodiscard]] Tensor matmul_transposed_b(const Tensor& a, const Tensor& b);

/// C = A(k,m)^T * B(k,n) -> (m,n).
[[nodiscard]] Tensor matmul_transposed_a(const Tensor& a, const Tensor& b);

}  // namespace bofl::nn
