// Sequential model container and the model zoo used by the FL tasks.
//
// The zoo's "proxy" models are intentionally small stand-ins for ViT /
// ResNet50 / LSTM: the pace controller never inspects the network, it only
// needs the FL substrate to run real SGD (see DESIGN.md §2).  The LSTM
// proxy genuinely recurs over a sequence.
#pragma once

#include <memory>
#include <string>

#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/lstm.hpp"

namespace bofl::nn {

class Sequential {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Layer> layer);

  [[nodiscard]] Tensor forward(const Tensor& input);
  /// Backpropagate through all layers; returns dLoss/dInput.
  Tensor backward(const Tensor& grad_output);

  void zero_gradients();

  [[nodiscard]] std::vector<Tensor*> parameters();
  [[nodiscard]] std::vector<Tensor*> gradients();

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t num_parameters();

  /// Flatten all parameters into one vector (FedAvg wire format).
  [[nodiscard]] std::vector<float> get_flat_parameters();
  /// Load parameters from the flat wire format; sizes must match.
  void set_flat_parameters(const std::vector<float>& flat);

  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// MLP classifier: input -> hidden (ReLU) x depth -> classes.
[[nodiscard]] Sequential make_mlp_classifier(std::size_t input_features,
                                             std::size_t hidden,
                                             std::size_t depth,
                                             std::size_t classes, Rng& rng);

/// Sequence classifier: LSTM over (batch, time, features) -> Dense logits.
[[nodiscard]] Sequential make_lstm_classifier(std::size_t input_features,
                                              std::size_t hidden,
                                              std::size_t classes, Rng& rng);

/// Small CNN: Conv(kxk) -> ReLU -> MaxPool(2x2) -> Flatten -> Dense.
/// Input (batch, channels, height, width); (height-k+1) and (width-k+1)
/// must be even for the pool.
[[nodiscard]] Sequential make_cnn_classifier(std::size_t channels,
                                             std::size_t height,
                                             std::size_t width,
                                             std::size_t filters,
                                             std::size_t kernel,
                                             std::size_t classes, Rng& rng);

}  // namespace bofl::nn
