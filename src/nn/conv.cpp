#include "nn/conv.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace bofl::nn {

namespace {

/// Flat index into an NCHW rank-4 tensor.
std::size_t idx4(const Tensor& t, std::size_t b, std::size_t c, std::size_t y,
                 std::size_t x) {
  return ((b * t.dim(1) + c) * t.dim(2) + y) * t.dim(3) + x;
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      weight_(Tensor::randn(
          {out_channels, in_channels * kernel_size * kernel_size}, rng,
          static_cast<float>(std::sqrt(
              2.0 / static_cast<double>(in_channels * kernel_size *
                                        kernel_size))))),
      bias_(Tensor::zeros({out_channels})),
      grad_weight_(Tensor::zeros(
          {out_channels, in_channels * kernel_size * kernel_size})),
      grad_bias_(Tensor::zeros({out_channels})) {
  BOFL_REQUIRE(kernel_size >= 1, "kernel size must be positive");
}

Tensor Conv2d::forward(const Tensor& input) {
  BOFL_REQUIRE(input.rank() == 4 && input.dim(1) == in_channels_,
               "Conv2d expects (batch, channels, height, width)");
  BOFL_REQUIRE(input.dim(2) >= kernel_ && input.dim(3) >= kernel_,
               "input smaller than the kernel");
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t out_h = input.dim(2) - kernel_ + 1;
  const std::size_t out_w = input.dim(3) - kernel_ + 1;
  Tensor out({batch, out_channels_, out_h, out_w});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      for (std::size_t y = 0; y < out_h; ++y) {
        for (std::size_t x = 0; x < out_w; ++x) {
          float sum = bias_[f];
          for (std::size_t c = 0; c < in_channels_; ++c) {
            for (std::size_t i = 0; i < kernel_; ++i) {
              for (std::size_t j = 0; j < kernel_; ++j) {
                sum += input[idx4(input, b, c, y + i, x + j)] *
                       weight_.at(f, (c * kernel_ + i) * kernel_ + j);
              }
            }
          }
          out[idx4(out, b, f, y, x)] = sum;
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  BOFL_REQUIRE(grad_output.rank() == 4 &&
                   grad_output.dim(0) == cached_input_.dim(0) &&
                   grad_output.dim(1) == out_channels_,
               "Conv2d backward shape mismatch");
  const Tensor& input = cached_input_;
  const std::size_t batch = input.dim(0);
  const std::size_t out_h = grad_output.dim(2);
  const std::size_t out_w = grad_output.dim(3);
  Tensor grad_input(input.shape());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      for (std::size_t y = 0; y < out_h; ++y) {
        for (std::size_t x = 0; x < out_w; ++x) {
          const float g = grad_output[idx4(grad_output, b, f, y, x)];
          if (g == 0.0f) {
            continue;
          }
          grad_bias_[f] += g;
          for (std::size_t c = 0; c < in_channels_; ++c) {
            for (std::size_t i = 0; i < kernel_; ++i) {
              for (std::size_t j = 0; j < kernel_; ++j) {
                const std::size_t w_index = (c * kernel_ + i) * kernel_ + j;
                grad_weight_.at(f, w_index) +=
                    g * input[idx4(input, b, c, y + i, x + j)];
                grad_input[idx4(input, b, c, y + i, x + j)] +=
                    g * weight_.at(f, w_index);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Tensor*> Conv2d::parameters() { return {&weight_, &bias_}; }
std::vector<Tensor*> Conv2d::gradients() {
  return {&grad_weight_, &grad_bias_};
}

Tensor MaxPool2d::forward(const Tensor& input) {
  BOFL_REQUIRE(input.rank() == 4, "MaxPool2d expects NCHW input");
  BOFL_REQUIRE(input.dim(2) % 2 == 0 && input.dim(3) % 2 == 0,
               "MaxPool2d needs even height and width");
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t out_h = input.dim(2) / 2;
  const std::size_t out_w = input.dim(3) / 2;
  Tensor out({batch, channels, out_h, out_w});
  argmax_.assign(out.size(), 0);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t y = 0; y < out_h; ++y) {
        for (std::size_t x = 0; x < out_w; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_index = 0;
          for (std::size_t i = 0; i < 2; ++i) {
            for (std::size_t j = 0; j < 2; ++j) {
              const std::size_t flat =
                  idx4(input, b, c, 2 * y + i, 2 * x + j);
              if (input[flat] > best) {
                best = input[flat];
                best_index = flat;
              }
            }
          }
          const std::size_t out_flat = idx4(out, b, c, y, x);
          out[out_flat] = best;
          argmax_[out_flat] = best_index;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  BOFL_REQUIRE(grad_output.size() == argmax_.size(),
               "MaxPool2d backward shape mismatch");
  Tensor grad_input(cached_input_.shape());
  for (std::size_t o = 0; o < grad_output.size(); ++o) {
    grad_input[argmax_[o]] += grad_output[o];
  }
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input) {
  BOFL_REQUIRE(input.rank() >= 2, "Flatten expects a batched tensor");
  cached_shape_ = input.shape();
  Tensor out({input.dim(0), input.size() / input.dim(0)});
  std::copy(input.data(), input.data() + input.size(), out.data());
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  BOFL_REQUIRE(!cached_shape_.empty(), "Flatten backward without forward");
  Tensor grad(cached_shape_);
  BOFL_REQUIRE(grad_output.size() == grad.size(),
               "Flatten backward shape mismatch");
  std::copy(grad_output.data(), grad_output.data() + grad_output.size(),
            grad.data());
  return grad;
}

}  // namespace bofl::nn
