#include "nn/tensor.hpp"

#include <numeric>

#include "common/error.hpp"

namespace bofl::nn {

namespace {
std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) {
    BOFL_REQUIRE(d > 0, "tensor dimensions must be positive");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {
  BOFL_REQUIRE(!shape_.empty(), "tensor needs at least one dimension");
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape), 0.0f);
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  BOFL_REQUIRE(axis < shape_.size(), "tensor axis out of range");
  return shape_[axis];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  BOFL_REQUIRE(rank() == 2, "2-D accessor on non-matrix tensor");
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  BOFL_REQUIRE(rank() == 2, "2-D accessor on non-matrix tensor");
  return data_[r * shape_[1] + c];
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  BOFL_REQUIRE(rank() == 3, "3-D accessor on non-rank-3 tensor");
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  BOFL_REQUIRE(rank() == 3, "3-D accessor on non-rank-3 tensor");
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_scaled(const Tensor& b, float s) {
  BOFL_REQUIRE(shape_ == b.shape_, "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * b.data_[i];
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  BOFL_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
               "matmul shape mismatch");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a.at(i, kk);
      if (aik == 0.0f) {
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += aik * b.at(kk, j);
      }
    }
  }
  return c;
}

Tensor matmul_transposed_b(const Tensor& a, const Tensor& b) {
  BOFL_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
               "matmul_transposed_b shape mismatch");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b.dim(0);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        sum += a.at(i, kk) * b.at(j, kk);
      }
      c.at(i, j) = sum;
    }
  }
  return c;
}

Tensor matmul_transposed_a(const Tensor& a, const Tensor& b) {
  BOFL_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0),
               "matmul_transposed_a shape mismatch");
  const std::size_t k = a.dim(0);
  const std::size_t m = a.dim(1);
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = a.at(kk, i);
      if (aki == 0.0f) {
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += aki * b.at(kk, j);
      }
    }
  }
  return c;
}

}  // namespace bofl::nn
