#include "nn/sgd.hpp"

#include "common/error.hpp"

namespace bofl::nn {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  BOFL_REQUIRE(learning_rate > 0.0, "learning rate must be positive");
  BOFL_REQUIRE(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0,1)");
}

void SgdOptimizer::set_learning_rate(double lr) {
  BOFL_REQUIRE(lr > 0.0, "learning rate must be positive");
  learning_rate_ = lr;
}

void SgdOptimizer::step(Sequential& model) {
  const std::vector<Tensor*> params = model.parameters();
  const std::vector<Tensor*> grads = model.gradients();
  BOFL_ASSERT(params.size() == grads.size(),
              "parameter/gradient list mismatch");
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->add_scaled(*grads[i],
                            static_cast<float>(-learning_rate_));
    }
    return;
  }
  if (velocity_.empty()) {
    for (Tensor* p : params) {
      velocity_.emplace_back(Tensor::zeros(p->shape()));
    }
  }
  BOFL_REQUIRE(velocity_.size() == params.size(),
               "optimizer bound to a different model");
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& v = velocity_[i];
    // v = momentum * v + g;  p -= lr * v
    for (std::size_t j = 0; j < v.size(); ++j) {
      v[j] = static_cast<float>(momentum_) * v[j] + (*grads[i])[j];
    }
    params[i]->add_scaled(v, static_cast<float>(-learning_rate_));
  }
}

}  // namespace bofl::nn
