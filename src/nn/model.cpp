#include "nn/model.hpp"

#include "common/error.hpp"

namespace bofl::nn {

void Sequential::add(std::unique_ptr<Layer> layer) {
  BOFL_REQUIRE(layer != nullptr, "cannot add a null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input) {
  BOFL_REQUIRE(!layers_.empty(), "empty model");
  Tensor activation = input;
  for (const auto& layer : layers_) {
    activation = layer->forward(activation);
  }
  return activation;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  BOFL_REQUIRE(!layers_.empty(), "empty model");
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

void Sequential::zero_gradients() {
  for (const auto& layer : layers_) {
    layer->zero_gradients();
  }
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> params;
  for (const auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> grads;
  for (const auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) {
      grads.push_back(g);
    }
  }
  return grads;
}

std::size_t Sequential::num_parameters() {
  std::size_t n = 0;
  for (Tensor* p : parameters()) {
    n += p->size();
  }
  return n;
}

std::vector<float> Sequential::get_flat_parameters() {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  for (Tensor* p : parameters()) {
    flat.insert(flat.end(), p->data(), p->data() + p->size());
  }
  return flat;
}

void Sequential::set_flat_parameters(const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (Tensor* p : parameters()) {
    BOFL_REQUIRE(offset + p->size() <= flat.size(),
                 "flat parameter vector too short");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset + p->size()),
              p->data());
    offset += p->size();
  }
  BOFL_REQUIRE(offset == flat.size(), "flat parameter vector too long");
}

Sequential make_mlp_classifier(std::size_t input_features, std::size_t hidden,
                               std::size_t depth, std::size_t classes,
                               Rng& rng) {
  BOFL_REQUIRE(depth >= 1, "MLP needs at least one hidden layer");
  Sequential model;
  model.add(std::make_unique<Dense>(input_features, hidden, rng));
  model.add(std::make_unique<ReLU>());
  for (std::size_t d = 1; d < depth; ++d) {
    model.add(std::make_unique<Dense>(hidden, hidden, rng));
    model.add(std::make_unique<ReLU>());
  }
  model.add(std::make_unique<Dense>(hidden, classes, rng));
  return model;
}

Sequential make_lstm_classifier(std::size_t input_features, std::size_t hidden,
                                std::size_t classes, Rng& rng) {
  Sequential model;
  model.add(std::make_unique<LstmCell>(input_features, hidden, rng));
  model.add(std::make_unique<Dense>(hidden, classes, rng));
  return model;
}

Sequential make_cnn_classifier(std::size_t channels, std::size_t height,
                               std::size_t width, std::size_t filters,
                               std::size_t kernel, std::size_t classes,
                               Rng& rng) {
  BOFL_REQUIRE(height >= kernel && width >= kernel,
               "image smaller than the kernel");
  const std::size_t conv_h = height - kernel + 1;
  const std::size_t conv_w = width - kernel + 1;
  BOFL_REQUIRE(conv_h % 2 == 0 && conv_w % 2 == 0,
               "conv output must be even for 2x2 pooling");
  Sequential model;
  model.add(std::make_unique<Conv2d>(channels, filters, kernel, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>());
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(filters * (conv_h / 2) * (conv_w / 2),
                                    classes, rng));
  return model;
}

}  // namespace bofl::nn
