// Softmax cross-entropy loss with integrated gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace bofl::nn {

/// Numerically stable softmax + cross-entropy over class logits.
class SoftmaxCrossEntropy {
 public:
  /// logits: (batch, classes); labels: one class id per row.
  /// Returns the mean loss over the batch.
  double forward(const Tensor& logits, const std::vector<std::int64_t>& labels);

  /// dLoss/dLogits of the most recent forward call, already averaged over
  /// the batch.
  [[nodiscard]] Tensor backward() const;

  /// Row-wise argmax of the cached probabilities (predictions).
  [[nodiscard]] std::vector<std::int64_t> predictions() const;

 private:
  Tensor probabilities_;
  std::vector<std::int64_t> labels_;
};

/// Classification accuracy of `predictions` against `labels`.
[[nodiscard]] double accuracy(const std::vector<std::int64_t>& predictions,
                              const std::vector<std::int64_t>& labels);

}  // namespace bofl::nn
