#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bofl::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<std::int64_t>& labels) {
  BOFL_REQUIRE(logits.rank() == 2, "loss expects (batch, classes) logits");
  BOFL_REQUIRE(labels.size() == logits.dim(0),
               "one label per batch row required");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  probabilities_ = Tensor({batch, classes});
  labels_ = labels;
  double total_loss = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    BOFL_REQUIRE(labels[b] >= 0 &&
                     static_cast<std::size_t>(labels[b]) < classes,
                 "label out of range");
    float max_logit = logits.at(b, 0);
    for (std::size_t c = 1; c < classes; ++c) {
      max_logit = std::max(max_logit, logits.at(b, c));
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(logits.at(b, c) - max_logit));
    }
    for (std::size_t c = 0; c < classes; ++c) {
      probabilities_.at(b, c) = static_cast<float>(
          std::exp(static_cast<double>(logits.at(b, c) - max_logit)) / denom);
    }
    const double p_true =
        std::max(static_cast<double>(
                     probabilities_.at(b, static_cast<std::size_t>(labels[b]))),
                 1e-12);
    total_loss += -std::log(p_true);
  }
  return total_loss / static_cast<double>(batch);
}

Tensor SoftmaxCrossEntropy::backward() const {
  BOFL_REQUIRE(probabilities_.size() > 0, "loss backward without forward");
  const std::size_t batch = probabilities_.dim(0);
  const std::size_t classes = probabilities_.dim(1);
  Tensor grad = probabilities_;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    grad.at(b, static_cast<std::size_t>(labels_[b])) -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      grad.at(b, c) *= inv_batch;
    }
  }
  return grad;
}

std::vector<std::int64_t> SoftmaxCrossEntropy::predictions() const {
  BOFL_REQUIRE(probabilities_.size() > 0, "predictions without forward");
  const std::size_t batch = probabilities_.dim(0);
  const std::size_t classes = probabilities_.dim(1);
  std::vector<std::int64_t> preds(batch, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    float best = probabilities_.at(b, 0);
    for (std::size_t c = 1; c < classes; ++c) {
      if (probabilities_.at(b, c) > best) {
        best = probabilities_.at(b, c);
        preds[b] = static_cast<std::int64_t>(c);
      }
    }
  }
  return preds;
}

double accuracy(const std::vector<std::int64_t>& predictions,
                const std::vector<std::int64_t>& labels) {
  BOFL_REQUIRE(predictions.size() == labels.size() && !labels.empty(),
               "accuracy needs equal non-empty vectors");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace bofl::nn
