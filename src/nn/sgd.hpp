// Stochastic gradient descent with optional classical momentum.
#pragma once

#include "nn/model.hpp"

namespace bofl::nn {

class SgdOptimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);

  /// Apply one update step: p -= lr * (momentum-filtered) g.
  /// Velocity buffers are allocated lazily and keyed by position, so the
  /// optimizer must always be used with the same model.
  void step(Sequential& model);

  [[nodiscard]] double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr);

 private:
  double learning_rate_;
  double momentum_;
  std::vector<Tensor> velocity_;
};

}  // namespace bofl::nn
