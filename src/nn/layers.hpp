// Neural-network layers with explicit forward/backward passes.
//
// Layers cache whatever the backward pass needs from the most recent
// forward call (single-threaded, one batch in flight — the FL executor's
// usage pattern).  Parameters and their gradients are exposed as parallel
// lists so the SGD optimizer and the FedAvg aggregator can treat every
// model as a flat parameter vector.
#pragma once

#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace bofl::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; caches activations for backward.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Backward pass: takes dLoss/dOutput, accumulates parameter gradients,
  /// returns dLoss/dInput.  Must be preceded by forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (may be empty).
  virtual std::vector<Tensor*> parameters() { return {}; }
  /// Gradients, parallel to parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// Zero all parameter gradients.
  void zero_gradients();
};

/// Fully connected layer: y = x W + b, x: (batch, in), W: (in, out).
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;

  [[nodiscard]] const Tensor& weight() const { return weight_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;
  Tensor bias_;
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

/// Rectified linear unit.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent.
class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

}  // namespace bofl::nn
