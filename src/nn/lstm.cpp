#include "nn/lstm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bofl::nn {

namespace {
float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

LstmCell::LstmCell(std::size_t input_features, std::size_t hidden_size,
                   Rng& rng)
    : input_(input_features),
      hidden_(hidden_size),
      weight_(Tensor::randn(
          {input_features + hidden_size, 4 * hidden_size}, rng,
          static_cast<float>(
              std::sqrt(1.0 / static_cast<double>(input_features +
                                                  hidden_size))))),
      bias_(Tensor::zeros({4 * hidden_size})),
      grad_weight_(Tensor::zeros({input_features + hidden_size,
                                  4 * hidden_size})),
      grad_bias_(Tensor::zeros({4 * hidden_size})) {
  // Forget-gate bias starts positive: the standard trick for stable early
  // training of LSTMs.
  for (std::size_t h = 0; h < hidden_; ++h) {
    bias_[hidden_ + h] = 1.0f;
  }
}

Tensor LstmCell::forward(const Tensor& input) {
  BOFL_REQUIRE(input.rank() == 3 && input.dim(2) == input_,
               "LSTM forward expects (batch, time, features)");
  batch_ = input.dim(0);
  time_ = input.dim(1);
  steps_.clear();
  steps_.reserve(time_);

  Tensor h({batch_, hidden_});
  Tensor c({batch_, hidden_});
  for (std::size_t t = 0; t < time_; ++t) {
    StepCache step;
    // z = [x_t, h_{t-1}]
    step.z = Tensor({batch_, input_ + hidden_});
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t j = 0; j < input_; ++j) {
        step.z.at(b, j) = input.at(b, t, j);
      }
      for (std::size_t j = 0; j < hidden_; ++j) {
        step.z.at(b, input_ + j) = h.at(b, j);
      }
    }
    Tensor gates = matmul(step.z, weight_);
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t j = 0; j < 4 * hidden_; ++j) {
        gates.at(b, j) += bias_[j];
      }
    }
    step.i = Tensor({batch_, hidden_});
    step.f = Tensor({batch_, hidden_});
    step.g = Tensor({batch_, hidden_});
    step.o = Tensor({batch_, hidden_});
    step.c = Tensor({batch_, hidden_});
    step.tanh_c = Tensor({batch_, hidden_});
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float ai = gates.at(b, j);
        const float af = gates.at(b, hidden_ + j);
        const float ag = gates.at(b, 2 * hidden_ + j);
        const float ao = gates.at(b, 3 * hidden_ + j);
        const float iv = sigmoid(ai);
        const float fv = sigmoid(af);
        const float gv = std::tanh(ag);
        const float ov = sigmoid(ao);
        const float cv = fv * c.at(b, j) + iv * gv;
        step.i.at(b, j) = iv;
        step.f.at(b, j) = fv;
        step.g.at(b, j) = gv;
        step.o.at(b, j) = ov;
        step.c.at(b, j) = cv;
        const float tc = std::tanh(cv);
        step.tanh_c.at(b, j) = tc;
        h.at(b, j) = ov * tc;
      }
    }
    c = step.c;
    steps_.push_back(std::move(step));
  }
  return h;
}

Tensor LstmCell::backward(const Tensor& grad_output) {
  BOFL_REQUIRE(grad_output.rank() == 2 && grad_output.dim(0) == batch_ &&
                   grad_output.dim(1) == hidden_,
               "LSTM backward expects (batch, hidden)");
  BOFL_REQUIRE(!steps_.empty(), "LSTM backward without forward");

  Tensor grad_input({batch_, time_, input_});
  Tensor dh = grad_output;
  Tensor dc({batch_, hidden_});
  for (std::size_t tt = time_; tt-- > 0;) {
    const StepCache& step = steps_[tt];
    // c_{t-1} is the previous step's cell state (zeros at t = 0).
    const Tensor* c_prev = tt > 0 ? &steps_[tt - 1].c : nullptr;

    Tensor da({batch_, 4 * hidden_});
    Tensor dc_prev({batch_, hidden_});
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float iv = step.i.at(b, j);
        const float fv = step.f.at(b, j);
        const float gv = step.g.at(b, j);
        const float ov = step.o.at(b, j);
        const float tc = step.tanh_c.at(b, j);
        const float dhv = dh.at(b, j);
        const float dcv = dc.at(b, j) + dhv * ov * (1.0f - tc * tc);
        const float cp = c_prev ? c_prev->at(b, j) : 0.0f;

        const float do_ = dhv * tc;
        const float di = dcv * gv;
        const float dg = dcv * iv;
        const float df = dcv * cp;

        da.at(b, j) = di * iv * (1.0f - iv);
        da.at(b, hidden_ + j) = df * fv * (1.0f - fv);
        da.at(b, 2 * hidden_ + j) = dg * (1.0f - gv * gv);
        da.at(b, 3 * hidden_ + j) = do_ * ov * (1.0f - ov);
        dc_prev.at(b, j) = dcv * fv;
      }
    }

    grad_weight_.add_scaled(matmul_transposed_a(step.z, da), 1.0f);
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t j = 0; j < 4 * hidden_; ++j) {
        grad_bias_[j] += da.at(b, j);
      }
    }
    const Tensor dz = matmul_transposed_b(da, weight_);
    Tensor dh_prev({batch_, hidden_});
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t j = 0; j < input_; ++j) {
        grad_input.at(b, tt, j) = dz.at(b, j);
      }
      for (std::size_t j = 0; j < hidden_; ++j) {
        dh_prev.at(b, j) = dz.at(b, input_ + j);
      }
    }
    dh = std::move(dh_prev);
    dc = std::move(dc_prev);
  }
  return grad_input;
}

std::vector<Tensor*> LstmCell::parameters() { return {&weight_, &bias_}; }
std::vector<Tensor*> LstmCell::gradients() {
  return {&grad_weight_, &grad_bias_};
}

}  // namespace bofl::nn
