// Single-layer LSTM over a fixed-length sequence, with full backpropagation
// through time.  Used by the IMDB-LSTM-style FL task: the layer consumes a
// rank-3 input (batch, time, features) and emits the final hidden state
// (batch, hidden), which a Dense head turns into class logits.
#pragma once

#include "nn/layers.hpp"

namespace bofl::nn {

class LstmCell final : public Layer {
 public:
  LstmCell(std::size_t input_features, std::size_t hidden_size, Rng& rng);

  /// input: (batch, time, input_features) -> output: (batch, hidden).
  Tensor forward(const Tensor& input) override;

  /// grad_output: (batch, hidden) w.r.t. the final hidden state.
  /// Returns (batch, time, input_features).
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;

  [[nodiscard]] std::size_t hidden_size() const { return hidden_; }

 private:
  struct StepCache {
    Tensor z;       ///< (batch, in + hidden) concatenated input
    Tensor i, f, g, o;
    Tensor c;       ///< cell state after this step
    Tensor tanh_c;  ///< tanh(c)
  };

  std::size_t input_;
  std::size_t hidden_;
  Tensor weight_;       ///< (in + hidden, 4 * hidden): gate order i, f, g, o
  Tensor bias_;         ///< (4 * hidden)
  Tensor grad_weight_;
  Tensor grad_bias_;
  std::vector<StepCache> steps_;
  std::size_t batch_ = 0;
  std::size_t time_ = 0;
};

}  // namespace bofl::nn
