// Convolutional layers for the image-classification FL tasks.
//
// A small but genuine CNN stack — valid 2-D convolution with stride 1,
// 2x2 max pooling, and a flatten adapter — so the "ResNet50 proxy" in the
// model zoo actually convolves.  Tensors are NCHW rank-4.
#pragma once

#include "nn/layers.hpp"

namespace bofl::nn {

/// Valid 2-D convolution, stride 1: (B, C, H, W) -> (B, F, H-k+1, W-k+1).
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;

  [[nodiscard]] std::size_t kernel_size() const { return kernel_; }

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  Tensor weight_;       ///< (F, C, k, k) stored as rank-2 (F, C*k*k)
  Tensor bias_;         ///< (F)
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

/// 2x2 max pooling, stride 2: (B, C, H, W) -> (B, C, H/2, W/2).
/// H and W must be even.
class MaxPool2d final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
  std::vector<std::size_t> argmax_;  ///< winner's flat index per output cell
};

/// Collapse all trailing dimensions: (B, ...) -> (B, prod(...)).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::vector<std::size_t> cached_shape_;
};

}  // namespace bofl::nn
