// Synthetic datasets standing in for CIFAR10 / ImageNet / IMDB.
//
// The real datasets are not available offline; these generators produce
// classification problems with the same *roles*: a learnable structure
// (class-dependent Gaussian prototypes, or class-dependent sequence
// drift for the sentiment task) plus noise, so FedAvg demonstrably reduces
// loss and improves accuracy across rounds.  Each client shards the stream
// by seed, giving non-identical local distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace bofl::nn {

/// A supervised dataset: features plus one integer label per example.
/// Features are rank-2 (n, d) for tabular/image-like data or rank-3
/// (n, time, d) for sequence data.
struct Dataset {
  Tensor features;
  std::vector<std::int64_t> labels;

  [[nodiscard]] std::size_t size() const { return labels.size(); }

  /// Copy rows [begin, begin+count) into a new dataset (a minibatch).
  [[nodiscard]] Dataset slice(std::size_t begin, std::size_t count) const;
};

/// Gaussian-prototype classification: `classes` prototypes in d dimensions,
/// examples = prototype + noise.  `class_skew` biases the label marginal
/// (Dirichlet-style) to model non-IID client shards.
[[nodiscard]] Dataset make_classification(std::size_t n, std::size_t dim,
                                          std::size_t classes,
                                          std::uint64_t seed,
                                          double noise = 0.8,
                                          double class_skew = 0.0);

/// Sequence classification: each class has a characteristic drift vector;
/// a sequence is a random walk with the class drift plus noise.
[[nodiscard]] Dataset make_sequences(std::size_t n, std::size_t time,
                                     std::size_t dim, std::size_t classes,
                                     std::uint64_t seed, double noise = 0.6);

/// Tiny-image classification (NCHW rank-4 features): each class places a
/// bright square at a class-specific location on a noisy background — the
/// spatial structure a convolution exploits and a flat MLP cannot see as
/// easily.
[[nodiscard]] Dataset make_images(std::size_t n, std::size_t channels,
                                  std::size_t height, std::size_t width,
                                  std::size_t classes, std::uint64_t seed,
                                  double noise = 0.4);

}  // namespace bofl::nn
