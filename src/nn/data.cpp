#include "nn/data.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bofl::nn {

Dataset Dataset::slice(std::size_t begin, std::size_t count) const {
  BOFL_REQUIRE(begin + count <= size(), "dataset slice out of range");
  Dataset out;
  out.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(begin),
                    labels.begin() + static_cast<std::ptrdiff_t>(begin + count));
  std::vector<std::size_t> shape = features.shape();
  shape[0] = count;
  out.features = Tensor(shape);
  const std::size_t row = features.size() / features.dim(0);
  std::copy(features.data() + begin * row,
            features.data() + (begin + count) * row, out.features.data());
  return out;
}

Dataset make_classification(std::size_t n, std::size_t dim,
                            std::size_t classes, std::uint64_t seed,
                            double noise, double class_skew) {
  BOFL_REQUIRE(n > 0 && dim > 0 && classes >= 2, "degenerate dataset shape");
  BOFL_REQUIRE(noise >= 0.0 && class_skew >= 0.0, "negative noise parameters");
  Rng rng(seed);
  // Prototypes are shared across shards (fixed seed) so that federated
  // clients learn the same underlying concept.
  Rng proto_rng(0xB0F1DA7AULL + classes * 131 + dim);
  std::vector<std::vector<float>> prototypes(classes,
                                             std::vector<float>(dim));
  for (auto& proto : prototypes) {
    for (float& v : proto) {
      v = static_cast<float>(proto_rng.normal(0.0, 1.0));
    }
  }
  // Class marginal: skew 0 = uniform; larger skew concentrates mass on a
  // shard-specific preferred class (non-IID federated shards).
  std::vector<double> weights(classes, 1.0);
  if (class_skew > 0.0) {
    weights[rng.uniform_index(classes)] += class_skew * static_cast<double>(classes);
  }
  double total_weight = 0.0;
  for (double w : weights) {
    total_weight += w;
  }

  Dataset ds;
  ds.features = Tensor({n, dim});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double pick = rng.uniform() * total_weight;
    std::size_t label = 0;
    while (label + 1 < classes && pick > weights[label]) {
      pick -= weights[label];
      ++label;
    }
    ds.labels[i] = static_cast<std::int64_t>(label);
    for (std::size_t d = 0; d < dim; ++d) {
      ds.features.at(i, d) =
          prototypes[label][d] +
          static_cast<float>(rng.normal(0.0, noise));
    }
  }
  return ds;
}

Dataset make_sequences(std::size_t n, std::size_t time, std::size_t dim,
                       std::size_t classes, std::uint64_t seed, double noise) {
  BOFL_REQUIRE(n > 0 && time > 0 && dim > 0 && classes >= 2,
               "degenerate dataset shape");
  Rng rng(seed);
  Rng proto_rng(0x5E9B0F1ULL + classes * 257 + dim * 17 + time);
  Dataset ds;
  ds.features = Tensor({n, time, dim});
  ds.labels.resize(n);
  // Class drift directions shared across shards.
  std::vector<std::vector<float>> drifts(classes, std::vector<float>(dim));
  for (auto& drift : drifts) {
    for (float& v : drift) {
      v = static_cast<float>(proto_rng.normal(0.0, 0.35));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label = rng.uniform_index(classes);
    ds.labels[i] = static_cast<std::int64_t>(label);
    std::vector<float> state(dim, 0.0f);
    for (std::size_t t = 0; t < time; ++t) {
      for (std::size_t d = 0; d < dim; ++d) {
        state[d] += drifts[label][d] +
                    static_cast<float>(rng.normal(0.0, noise));
        ds.features.at(i, t, d) = state[d];
      }
    }
  }
  return ds;
}

Dataset make_images(std::size_t n, std::size_t channels, std::size_t height,
                    std::size_t width, std::size_t classes,
                    std::uint64_t seed, double noise) {
  BOFL_REQUIRE(n > 0 && channels > 0 && classes >= 2,
               "degenerate dataset shape");
  BOFL_REQUIRE(height >= 4 && width >= 4, "images must be at least 4x4");
  Rng rng(seed);
  // Class-specific blob centers shared across shards.
  Rng proto_rng(0x1AB5EEDULL + classes * 41 + height * 7 + width);
  std::vector<std::pair<std::size_t, std::size_t>> centers;
  for (std::size_t k = 0; k < classes; ++k) {
    centers.emplace_back(1 + proto_rng.uniform_index(height - 2),
                         1 + proto_rng.uniform_index(width - 2));
  }
  Dataset ds;
  ds.features = Tensor({n, channels, height, width});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label = rng.uniform_index(classes);
    ds.labels[i] = static_cast<std::int64_t>(label);
    const auto [cy, cx] = centers[label];
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
          const bool in_blob = y + 1 >= cy && y <= cy + 1 &&
                               x + 1 >= cx && x <= cx + 1;
          const double value = (in_blob ? 1.0 : 0.0) + rng.normal(0.0, noise);
          ds.features[((i * channels + c) * height + y) * width + x] =
              static_cast<float>(value);
        }
      }
    }
  }
  return ds;
}

}  // namespace bofl::nn
