#include "nn/layers.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bofl::nn {

void Layer::zero_gradients() {
  for (Tensor* g : gradients()) {
    g->fill(0.0f);
  }
}

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    // He-style initialization scaled for the tanh/ReLU mixes we build.
    : weight_(Tensor::randn(
          {in_features, out_features}, rng,
          static_cast<float>(std::sqrt(2.0 / static_cast<double>(in_features))))),
      bias_(Tensor::zeros({out_features})),
      grad_weight_(Tensor::zeros({in_features, out_features})),
      grad_bias_(Tensor::zeros({out_features})) {}

Tensor Dense::forward(const Tensor& input) {
  BOFL_REQUIRE(input.rank() == 2 && input.dim(1) == weight_.dim(0),
               "Dense forward shape mismatch");
  cached_input_ = input;
  Tensor out = matmul(input, weight_);
  for (std::size_t r = 0; r < out.dim(0); ++r) {
    for (std::size_t c = 0; c < out.dim(1); ++c) {
      out.at(r, c) += bias_[c];
    }
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  BOFL_REQUIRE(grad_output.rank() == 2 &&
                   grad_output.dim(1) == weight_.dim(1) &&
                   grad_output.dim(0) == cached_input_.dim(0),
               "Dense backward shape mismatch");
  // dW += x^T g;  db += column sums of g;  dx = g W^T.
  grad_weight_.add_scaled(matmul_transposed_a(cached_input_, grad_output),
                          1.0f);
  for (std::size_t r = 0; r < grad_output.dim(0); ++r) {
    for (std::size_t c = 0; c < grad_output.dim(1); ++c) {
      grad_bias_[c] += grad_output.at(r, c);
    }
  }
  return matmul_transposed_b(grad_output, weight_);
}

std::vector<Tensor*> Dense::parameters() { return {&weight_, &bias_}; }
std::vector<Tensor*> Dense::gradients() {
  return {&grad_weight_, &grad_bias_};
}

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  BOFL_REQUIRE(grad_output.shape() == cached_input_.shape(),
               "ReLU backward shape mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (cached_input_[i] <= 0.0f) {
      grad[i] = 0.0f;
    }
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::tanh(out[i]);
  }
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  BOFL_REQUIRE(grad_output.shape() == cached_output_.shape(),
               "Tanh backward shape mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= (1.0f - y * y);
  }
  return grad;
}

}  // namespace bofl::nn
