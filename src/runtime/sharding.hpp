// Shard partitioning for data-parallel engines (src/fleet): split N items
// into contiguous, near-equal ranges so each shard owns an index interval
// and cross-shard reductions can run in shard order — which, for
// order-insensitive accumulators (integers, max), is bit-identical to the
// unsharded loop at any shard count.
//
// The contiguity guarantee is load-bearing: per-item state derived from the
// item id (hash-based RNG domains, cluster assignment) never depends on the
// shard layout, so re-sharding a fleet moves *where* work runs but not
// *what* it computes.
#pragma once

#include <cstddef>

namespace bofl::runtime {

/// Contiguous half-open index range owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Shards to use for `items` when the caller passed 0 ("pick for me"):
/// enough to keep every hardware thread busy (2x oversubscription for load
/// balance) without dropping below ~4096 items per shard, floored at 1.
[[nodiscard]] std::size_t resolve_shard_count(std::size_t items,
                                              std::size_t requested);

/// The `shard`-th of `shards` contiguous ranges over [0, items): the first
/// items % shards ranges get one extra item, so sizes differ by at most 1.
/// Requires shard < shards.
[[nodiscard]] ShardRange shard_range(std::size_t items, std::size_t shards,
                                     std::size_t shard);

}  // namespace bofl::runtime
