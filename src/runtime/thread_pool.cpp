#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bofl::runtime {

namespace {

/// Which pool (if any) owns the current thread.  Lets parallel_for_each
/// detect re-entrant use from a worker and fall back to inline execution.
thread_local const ThreadPool* t_owning_pool = nullptr;

}  // namespace

std::size_t hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = hardware_threads();
  }
  // A negative flag value cast to size_t lands here as ~2^64; reject it
  // with a real message instead of dying inside vector::reserve.
  BOFL_REQUIRE(num_threads <= 65536,
               "thread count is implausibly large (negative value?)");
  if (telemetry::Registry* reg = telemetry::global_registry()) {
    telemetry_.tasks_submitted = &reg->counter("runtime.tasks_submitted");
    telemetry_.tasks_executed = &reg->counter("runtime.tasks_executed");
    telemetry_.task_seconds = &reg->histogram("runtime.task_seconds");
    telemetry_.queue_depth = &reg->histogram(
        "runtime.queue_depth", telemetry::exponential_buckets(1.0, 2.0, 16));
    telemetry_.utilization = &reg->gauge("runtime.pool_utilization");
    reg->gauge("runtime.workers").set(static_cast<double>(num_threads));
    created_ = std::chrono::steady_clock::now();
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  if (telemetry_.utilization != nullptr) {
    // Fraction of worker-seconds spent inside tasks over the pool lifetime
    // (last-created pool wins when several pools share a registry).
    const std::chrono::duration<double> alive =
        std::chrono::steady_clock::now() - created_;
    const double capacity =
        static_cast<double>(workers_.size()) * alive.count();
    if (capacity > 0.0) {
      telemetry_.utilization->set(
          busy_seconds_.load(std::memory_order_relaxed) / capacity);
    }
  }
}

bool ThreadPool::on_worker_thread() const { return t_owning_pool == this; }

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    BOFL_REQUIRE(!stop_, "submit() on a stopped ThreadPool");
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (telemetry_.queue_depth != nullptr) {
    telemetry_.queue_depth->observe(static_cast<double>(depth));
    telemetry_.tasks_submitted->add(1);
  }
}

void ThreadPool::worker_loop() {
  t_owning_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (telemetry_.task_seconds != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      task();  // packaged_task: exceptions land in the matching future
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      telemetry_.task_seconds->observe(elapsed.count());
      telemetry_.tasks_executed->add(1);
      telemetry::detail::atomic_add(busy_seconds_, elapsed.count());
    } else {
      task();
    }
  }
}

}  // namespace bofl::runtime
