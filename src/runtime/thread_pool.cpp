#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bofl::runtime {

namespace {

/// Which pool (if any) owns the current thread.  Lets parallel_for_each
/// detect re-entrant use from a worker and fall back to inline execution.
thread_local const ThreadPool* t_owning_pool = nullptr;

}  // namespace

std::size_t hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = hardware_threads();
  }
  // A negative flag value cast to size_t lands here as ~2^64; reject it
  // with a real message instead of dying inside vector::reserve.
  BOFL_REQUIRE(num_threads <= 65536,
               "thread count is implausibly large (negative value?)");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::on_worker_thread() const { return t_owning_pool == this; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    BOFL_REQUIRE(!stop_, "submit() on a stopped ThreadPool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_owning_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the matching future
  }
}

}  // namespace bofl::runtime
