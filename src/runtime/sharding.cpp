#include "runtime/sharding.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "runtime/thread_pool.hpp"

namespace bofl::runtime {

std::size_t resolve_shard_count(std::size_t items, std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (items == 0) {
    return 1;
  }
  const std::size_t by_threads = 2 * hardware_threads();
  const std::size_t by_items = (items + 4095) / 4096;
  return std::max<std::size_t>(1, std::min(by_threads, by_items));
}

ShardRange shard_range(std::size_t items, std::size_t shards,
                       std::size_t shard) {
  BOFL_REQUIRE(shards > 0 && shard < shards,
               "shard index must lie inside the shard count");
  const std::size_t base = items / shards;
  const std::size_t extra = items % shards;
  const std::size_t begin =
      shard * base + std::min(shard, extra);
  const std::size_t size = base + (shard < extra ? 1 : 0);
  return ShardRange{begin, begin + size};
}

}  // namespace bofl::runtime
