// Fleet-scale concurrency runtime: a fixed-size worker pool with a shared
// task queue, plus the parallel_for_each building block the rest of the
// stack uses for embarrassingly-parallel work (independent FL clients in a
// round, candidate scoring in the MBO engine, controller sweeps).
//
// Design rules:
//   * Determinism is the caller's contract, concurrency is ours.  The pool
//     never reorders *results*: parallel_for_each writes into caller-owned
//     slots indexed by the item, so a reduction over those slots in index
//     order is bit-identical however many workers ran.  Anything stateful
//     (shared RNG draws, EWMA updates) must be pulled out of the parallel
//     region or split into per-task streams (common/rng.hpp stream_seed).
//   * The calling thread participates.  parallel_for_each runs items on the
//     caller too, so a pool of size 1 degenerates to the serial loop and
//     nested parallel_for_each on one pool cannot deadlock: a worker that
//     re-enters simply chews through its own items.
//   * Exceptions propagate.  The first exception thrown by any task is
//     captured and rethrown on the calling thread once all items finished.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "telemetry/metrics.hpp"

namespace bofl::runtime {

/// Worker threads to use when the caller passed 0 ("pick for me"):
/// std::thread::hardware_concurrency(), floored at 1.
[[nodiscard]] std::size_t hardware_threads();

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware_threads().
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue one task; the future carries its result or exception.
  template <typename F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// True when called from one of this pool's workers (used to decide
  /// whether a nested parallel region may block on the queue).
  [[nodiscard]] bool on_worker_thread() const;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  /// Metric handles resolved from the global telemetry registry at pool
  /// construction (all null when telemetry is off — the hot paths then pay
  /// one null check).  A registry installed before a pool is created must
  /// outlive the pool.
  struct Telemetry {
    telemetry::Counter* tasks_submitted = nullptr;
    telemetry::Counter* tasks_executed = nullptr;
    telemetry::Histogram* task_seconds = nullptr;
    telemetry::Histogram* queue_depth = nullptr;
    telemetry::Gauge* utilization = nullptr;
  };

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  Telemetry telemetry_;
  std::atomic<double> busy_seconds_{0.0};
  std::chrono::steady_clock::time_point created_{};
};

namespace detail {

/// Shared state of one parallel_for_each region: a work cursor plus the
/// first captured exception.
struct ForEachState {
  explicit ForEachState(std::size_t n) : total(n) {}
  const std::size_t total;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  template <typename Fn>
  void drain(const Fn& fn) {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < total; i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (failed.load(std::memory_order_acquire)) {
        return;  // best-effort early exit once something threw
      }
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
      }
    }
  }
};

}  // namespace detail

/// Apply fn(i) for every i in [0, n).  Items are claimed dynamically from a
/// shared cursor, so uneven item costs balance across workers; the calling
/// thread works too.  With pool == nullptr, a pool of size 1, or n <= 1 the
/// loop runs serially on the caller.  The first exception any item throws
/// is rethrown here after the region finishes.
template <typename Fn>
void parallel_for_each(ThreadPool* pool, std::size_t n, const Fn& fn) {
  if (n == 0) {
    return;
  }
  // A worker re-entering its own pool must not block on queued helpers
  // (they may sit behind the very tasks waiting for them); the caller just
  // runs its nested region inline.
  if (pool == nullptr || pool->size() <= 1 || n == 1 ||
      pool->on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  detail::ForEachState state(n);
  const std::size_t helpers = std::min(pool->size(), n - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    pending.push_back(pool->submit([&state, &fn]() { state.drain(fn); }));
  }
  state.drain(fn);
  for (std::future<void>& f : pending) {
    f.get();
  }
  if (state.error) {
    std::rethrow_exception(state.error);
  }
}

}  // namespace bofl::runtime
